"""Per-chip runtime fault state.

A :class:`FaultState` is the *hardware truth* of one degraded chip: a
map over its physical PE sites (one site per gain-setting memristor
ratio, ``array_rows * array_cols`` of them) recording which sites are
stuck, drifted or mismatched, plus chip-level converter/comparator
offsets and a read-disturb noise magnitude.  The behavioural simulator
consults it through :class:`repro.faults.graph.FaultedBlockGraph`:
every weighted analog stage built for a computation is assigned the
next *enabled* physical site (deterministic for a given computation
shape, as on a real chip where the controller's PE mapping is fixed),
and the site's faults perturb the stage's memristor-ratio weight.

Repair (:mod:`repro.faults.repair`) mutates the same state: re-tuned
sites have their drift/mismatch trimmed to the tuning residual, and
irreparable sites are *disabled* — the controller remaps stages onto
the remaining healthy sites and the usable array shrinks by whole
rows (:meth:`FaultState.usable_rows`), forcing extra tiling passes
instead of wrong answers.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Optional

import numpy as np

from ..errors import FaultInjectionError
from ..memristor.device import DeviceParameters, PAPER_PARAMETERS

#: Stuck-at codes stored per site.
STUCK_NONE = 0
STUCK_RON = 1
STUCK_ROFF = 2

STUCK_NAMES = {
    STUCK_NONE: "none",
    STUCK_RON: "stuck-at-ron",
    STUCK_ROFF: "stuck-at-roff",
}


@dataclasses.dataclass
class FaultState:
    """Mutable runtime-fault map of one accelerator chip.

    Attributes
    ----------
    array_rows, array_cols:
        Physical PE array dimensions; ``n_sites = rows * cols``.
    device:
        Memristor device corner (Ron/Roff) used to translate stuck-at
        faults into effective weight ratios.
    stuck:
        Per-site stuck-at code (``STUCK_NONE`` / ``STUCK_RON`` /
        ``STUCK_ROFF``).
    drift:
        Per-site multiplicative conductance-drift factor on the tuned
        ratio (1.0 = no drift).
    mismatch:
        Per-site multiplicative lost-pair mismatch factor — the
        Section 3.3 matched-layout pairing has been violated (1.0 =
        intact pair).
    disabled:
        Per-site dead flag set by the repair remapper; disabled sites
        are never assigned to stages again.
    adc_offset_v:
        Chip-level additive offset (volts) at the ADC reference — the
        converter's drifted zero.
    comparator_offset_v:
        Chip-level additive offset (volts) on every comparator
        threshold.
    read_disturb_sigma:
        Relative std-dev of per-settle multiplicative read noise; this
        is the only *time-varying* fault (fresh draw every settle).
    seed:
        Seed of the read-disturb stream.
    """

    array_rows: int
    array_cols: int
    device: DeviceParameters = dataclasses.field(
        default_factory=lambda: PAPER_PARAMETERS
    )
    stuck: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    drift: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    mismatch: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    disabled: np.ndarray = dataclasses.field(default=None)  # type: ignore[assignment]
    adc_offset_v: float = 0.0
    comparator_offset_v: float = 0.0
    read_disturb_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.array_rows < 1 or self.array_cols < 1:
            raise FaultInjectionError("fault map needs a >= 1x1 array")
        n = self.n_sites
        if self.stuck is None:
            self.stuck = np.zeros(n, dtype=np.int8)
        if self.drift is None:
            self.drift = np.ones(n)
        if self.mismatch is None:
            self.mismatch = np.ones(n)
        if self.disabled is None:
            self.disabled = np.zeros(n, dtype=bool)
        for name in ("stuck", "drift", "mismatch", "disabled"):
            if getattr(self, name).shape != (n,):
                raise FaultInjectionError(
                    f"{name} map must have one entry per site ({n})"
                )
        if self.read_disturb_sigma < 0:
            raise FaultInjectionError(
                "read_disturb_sigma must be >= 0"
            )
        self._read_rng = np.random.default_rng(self.seed)
        self._refresh_enabled()

    # -- geometry ----------------------------------------------------------
    @property
    def n_sites(self) -> int:
        return self.array_rows * self.array_cols

    def _refresh_enabled(self) -> None:
        self._enabled = np.flatnonzero(~self.disabled)

    @property
    def n_enabled(self) -> int:
        return int(self._enabled.size)

    def usable_rows(self) -> int:
        """Rows of the logically repacked healthy array.

        The controller repacks healthy PEs into full-width rows, so
        ``n_enabled // array_cols`` rows remain addressable (never
        below one: a chip with fewer healthy sites than one row still
        serves, serially).
        """
        return max(1, min(self.array_rows, self.n_enabled // self.array_cols))

    def usable_cols(self) -> int:
        """Columns stay full width under row-granular repacking."""
        return self.array_cols

    # -- stage-to-site mapping ---------------------------------------------
    def site_for_stage(self, stage_index: int) -> int:
        """Physical site of the ``stage_index``-th weighted stage.

        Stages wrap round-robin over the *enabled* sites, so the same
        computation shape always exercises the same sites (needed for
        deterministic BIST) and the remapper's disable takes effect
        immediately.
        """
        if self._enabled.size == 0:
            raise FaultInjectionError(
                "every PE site is disabled; the chip has no capacity "
                "left (replace the shard)"
            )
        return int(self._enabled[stage_index % self._enabled.size])

    # -- fault application -------------------------------------------------
    def stuck_weight(self, code: int, w: float) -> float:
        """Effective ratio weight of a stage whose denominator device
        is pinned at Ron/Roff.

        The tuned pair realises ``w = R_ref / R_den`` with the
        reference anchored mid-range (geometric mean of the device
        corner); a pinned denominator forces the ratio to
        ``R_ref / R_on`` (huge) or ``R_ref / R_off`` (tiny) regardless
        of the programmed target.  The sign (inverting vs
        non-inverting wiring) survives the fault.
        """
        r_ref = math.sqrt(self.device.r_on * self.device.r_off)
        pinned = (
            self.device.r_on if code == STUCK_RON else self.device.r_off
        )
        magnitude = r_ref / pinned
        return math.copysign(magnitude, w) if w != 0.0 else magnitude

    def apply_weight(self, stage_index: int, w: float) -> float:
        """Perturb one stage weight with its site's runtime faults."""
        site = self.site_for_stage(stage_index)
        code = int(self.stuck[site])
        if code != STUCK_NONE:
            w = self.stuck_weight(code, w)
        else:
            w = w * float(self.drift[site] * self.mismatch[site])
        if self.read_disturb_sigma > 0.0:
            w = w * (
                1.0
                + float(
                    self._read_rng.normal(0.0, self.read_disturb_sigma)
                )
            )
        return w

    # -- mutation ----------------------------------------------------------
    def disable_site(self, site: int) -> None:
        """Mark one site dead (remapped around); clears its faults."""
        if not 0 <= site < self.n_sites:
            raise FaultInjectionError(f"no site {site}")
        self.disabled[site] = True
        self.stuck[site] = STUCK_NONE
        self.drift[site] = 1.0
        self.mismatch[site] = 1.0
        self._refresh_enabled()
        if self._enabled.size == 0:
            raise FaultInjectionError(
                "disabling this site killed the last healthy PE; the "
                "chip has no capacity left"
            )

    def clear_site(self, site: int) -> None:
        """Restore one site to nominal (successful recalibration)."""
        if not 0 <= site < self.n_sites:
            raise FaultInjectionError(f"no site {site}")
        self.stuck[site] = STUCK_NONE
        self.drift[site] = 1.0
        self.mismatch[site] = 1.0

    # -- reporting ---------------------------------------------------------
    def faulty_sites(self) -> np.ndarray:
        """Enabled sites carrying at least one device-level fault."""
        faulty = (
            (self.stuck != STUCK_NONE)
            | (self.drift != 1.0)
            | (self.mismatch != 1.0)
        ) & ~self.disabled
        return np.flatnonzero(faulty)

    @property
    def n_faulty(self) -> int:
        return int(self.faulty_sites().size)

    @property
    def has_faults(self) -> bool:
        return (
            self.n_faulty > 0
            or bool(self.disabled.any())
            or self.adc_offset_v != 0.0
            or self.comparator_offset_v != 0.0
            or self.read_disturb_sigma > 0.0
        )

    def summary(self) -> Dict[str, object]:
        """JSON-able census of the fault map."""
        return {
            "n_sites": self.n_sites,
            "n_enabled": self.n_enabled,
            "n_faulty": self.n_faulty,
            "n_disabled": int(self.disabled.sum()),
            "n_stuck_ron": int((self.stuck == STUCK_RON).sum()),
            "n_stuck_roff": int((self.stuck == STUCK_ROFF).sum()),
            "n_drifted": int(
                ((self.drift != 1.0) & ~self.disabled).sum()
            ),
            "n_mismatched": int(
                ((self.mismatch != 1.0) & ~self.disabled).sum()
            ),
            "adc_offset_v": float(self.adc_offset_v),
            "comparator_offset_v": float(self.comparator_offset_v),
            "read_disturb_sigma": float(self.read_disturb_sigma),
            "usable_rows": self.usable_rows(),
            "usable_cols": self.usable_cols(),
        }


def fresh_state(
    array_rows: int,
    array_cols: int,
    device: Optional[DeviceParameters] = None,
    seed: int = 0,
) -> FaultState:
    """A fault-free state sized for one chip."""
    return FaultState(
        array_rows=array_rows,
        array_cols=array_cols,
        device=device if device is not None else PAPER_PARAMETERS,
        seed=seed,
    )
