"""Repair: recalibrate faulted ratios, remap irreparable PEs.

The closed loop's third stage.  For every faulty site of a chip's
:class:`~repro.faults.state.FaultState`:

* **Drifted / mismatched sites** are re-tuned with the paper's own
  Section 3.3 modulate/verify loop (:func:`repro.memristor.tuning.
  tune_ratio`) against a mid-range reference device.  Success trims
  the site's ratio error to the achieved tuning residual (a real
  residual — the loop bottoms out at the verify-measurement noise
  floor, not at zero).
* **Stuck sites** are put through the same loop; a pinned device
  ignores every modulation pulse, the loop exhausts its iteration
  budget with a :class:`~repro.errors.TuningError`, and the site is
  *disabled* — the controller remaps stages onto the remaining
  healthy sites and the usable array shrinks (extra tiling passes
  instead of wrong distances).
* **Chip-level converter offsets** (ADC reference, comparator
  thresholds) are auto-zero trimmed.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional

import numpy as np

from ..memristor.device import Memristor
from ..memristor.tuning import TuningConfig, tune_ratio
from ..errors import FaultInjectionError, TuningError
from .state import STUCK_NAMES, STUCK_NONE, FaultState


class _StuckMemristor(Memristor):
    """A pinned device: programming pulses do not move it."""

    def __init__(self, params, resistance: float) -> None:
        super().__init__(params)
        super().set_resistance(resistance)

    def set_resistance(self, resistance: float) -> None:
        pass  # filament ruptured / permanently formed


@dataclasses.dataclass(frozen=True)
class SiteRepair:
    """Outcome of one site's recalibration attempt."""

    site: int
    kind: str  # "stuck-at-ron" | "stuck-at-roff" | "drift" | "mismatch"
    outcome: str  # "retuned" | "dead"
    residual_error: float
    iterations: int

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RepairReport:
    """Everything one recalibration pass did to one chip."""

    repairs: List[SiteRepair]
    usable_rows_before: int
    usable_rows_after: int
    adc_offset_trimmed_v: float
    comparator_offset_trimmed_v: float

    @property
    def n_faulty(self) -> int:
        return len(self.repairs)

    @property
    def n_retuned(self) -> int:
        return sum(1 for r in self.repairs if r.outcome == "retuned")

    @property
    def n_dead(self) -> int:
        return sum(1 for r in self.repairs if r.outcome == "dead")

    @property
    def repair_rate(self) -> float:
        """Fraction of faulty sites restored by tuning (1.0 if none)."""
        return self.n_retuned / self.n_faulty if self.n_faulty else 1.0

    @property
    def total_iterations(self) -> int:
        return sum(r.iterations for r in self.repairs)

    def as_dict(self) -> Dict[str, object]:
        return {
            "n_faulty": self.n_faulty,
            "n_retuned": self.n_retuned,
            "n_dead": self.n_dead,
            "repair_rate": self.repair_rate,
            "total_iterations": self.total_iterations,
            "usable_rows_before": self.usable_rows_before,
            "usable_rows_after": self.usable_rows_after,
            "adc_offset_trimmed_v": self.adc_offset_trimmed_v,
            "comparator_offset_trimmed_v": (
                self.comparator_offset_trimmed_v
            ),
            "repairs": [r.as_dict() for r in self.repairs],
        }


def _site_kind(state: FaultState, site: int) -> str:
    code = int(state.stuck[site])
    if code != STUCK_NONE:
        return STUCK_NAMES[code]
    if state.drift[site] != 1.0:
        return "drift"
    return "mismatch"


def recalibrate(
    accelerator,
    config: Optional[TuningConfig] = None,
    rng: Optional[np.random.Generator] = None,
    stuck_iteration_budget: int = 8,
) -> RepairReport:
    """Run the repair loop over one chip's fault map.

    Parameters
    ----------
    accelerator:
        A :class:`~repro.accelerator.DistanceAccelerator` carrying a
        fault map (see :meth:`inject_faults`).
    config:
        Modulate/verify knobs.  The default tunes to 0.1 % — tighter
        than the fabrication-time 0.5 % default — because repair runs
        once per BIST flag, not once per chip batch, and a looser
        residual can flip near-tie diode selections (max/min trees)
        during requalification.
    rng:
        Write/verify noise stream (seeded from the fault map when
        omitted, keeping repair reproducible).
    stuck_iteration_budget:
        Modulation pulses spent on a site before declaring it dead —
        the controller gives up early rather than burning the full
        tuning budget on a pinned device.
    """
    state = accelerator.fault_state
    if state is None:
        raise FaultInjectionError(
            "accelerator carries no fault map; nothing to recalibrate"
        )
    if config is None:
        config = TuningConfig(tolerance=0.001, max_iterations=100)
    if rng is None:
        rng = np.random.default_rng(state.seed + 1)
    if stuck_iteration_budget < 1:
        raise FaultInjectionError(
            "stuck_iteration_budget must be >= 1"
        )

    device = state.device
    r_ref = math.sqrt(device.r_on * device.r_off)
    repairs: List[SiteRepair] = []
    rows_before = state.usable_rows()

    for site in state.faulty_sites().tolist():
        kind = _site_kind(state, site)
        reference = Memristor(device)
        reference.set_resistance(r_ref)
        if int(state.stuck[site]) != STUCK_NONE:
            pinned_r = (
                device.r_on
                if kind == "stuck-at-ron"
                else device.r_off
            )
            stuck_device = _StuckMemristor(device, pinned_r)
            stuck_config = dataclasses.replace(
                config, max_iterations=stuck_iteration_budget
            )
            try:
                tune_ratio(
                    stuck_device,
                    reference,
                    1.0,
                    config=stuck_config,
                    rng=rng,
                )
            except TuningError:
                pass
            else:  # pragma: no cover - a pinned device cannot tune
                raise FaultInjectionError(
                    f"stuck site {site} tuned successfully; the "
                    "stuck model is broken"
                )
            state.disable_site(site)
            repairs.append(
                SiteRepair(
                    site=site,
                    kind=kind,
                    outcome="dead",
                    residual_error=abs(pinned_r / r_ref - 1.0),
                    iterations=stuck_iteration_budget,
                )
            )
            continue

        # Drift / lost-pair mismatch: the device moved but still
        # moves — rebuild it at its drifted resistance and re-tune
        # the ratio back to 1 (nominal).
        drifted_factor = float(state.drift[site] * state.mismatch[site])
        drifted = Memristor(device)
        drifted.set_resistance(
            float(
                np.clip(
                    r_ref * drifted_factor, device.r_on, device.r_off
                )
            )
        )
        try:
            result = tune_ratio(
                drifted, reference, 1.0, config=config, rng=rng
            )
        except TuningError:
            state.disable_site(site)
            repairs.append(
                SiteRepair(
                    site=site,
                    kind=kind,
                    outcome="dead",
                    residual_error=abs(drifted_factor - 1.0),
                    iterations=config.max_iterations,
                )
            )
            continue
        state.clear_site(site)
        # The re-tuned ratio keeps the loop's real residual.
        state.drift[site] = result.achieved_ratio
        repairs.append(
            SiteRepair(
                site=site,
                kind=kind,
                outcome="retuned",
                residual_error=result.relative_error,
                iterations=result.iterations,
            )
        )

    adc_trim = state.adc_offset_v
    comparator_trim = state.comparator_offset_v
    state.adc_offset_v = 0.0
    state.comparator_offset_v = 0.0

    # The fault map changed under the accelerator's feet: any cached
    # graph template embeds the pre-repair weights and comparator
    # offsets, so bump the fault epoch before anything re-probes.
    invalidate = getattr(accelerator, "invalidate_templates", None)
    if invalidate is not None:
        invalidate()

    return RepairReport(
        repairs=repairs,
        usable_rows_before=rows_before,
        usable_rows_after=state.usable_rows(),
        adc_offset_trimmed_v=adc_trim,
        comparator_offset_trimmed_v=comparator_trim,
    )
