"""Fault-aware analog block graph.

:class:`FaultedBlockGraph` is a drop-in :class:`~repro.analog.BlockGraph`
that consults a :class:`~repro.faults.state.FaultState` while building:
each memristor-ratio weight (one per ``lin`` term / ``absdiff`` stage)
is assigned the next enabled physical PE site and perturbed by that
site's stuck/drift/mismatch faults, and every comparator threshold
picks up the chip's offset drift.  The graph stays electrically
well-formed — which is exactly why the static ERC layer cannot see
runtime faults and the online BIST of :mod:`repro.faults.bist` exists.

Interaction with the graph-template cache
-----------------------------------------
Two identical build sequences on the same fault map produce
bit-identical graphs (site assignment is a deterministic round-robin
restarting per build), so frozen faulted graphs are cacheable — *as
long as the fault map does not change between builds*.  The
accelerator therefore bumps a fault epoch and drops its templates on
``inject_faults``/``clear_faults``/recalibration; anything mutating a
:class:`FaultState` in place outside those paths must call
``DistanceAccelerator.invalidate_templates`` itself.  The one
exception to determinism is time-varying read disturb
(``read_disturb_sigma > 0``), which draws from a *stateful* RNG per
build — :attr:`FaultedBlockGraph.deterministic_build` is then False
and the accelerator bypasses the cache entirely.
"""

from __future__ import annotations

from ..analog import BlockGraph, NonidealityModel, TimingModel
from .state import FaultState


class FaultedBlockGraph(BlockGraph):
    """A block graph built on a chip carrying runtime faults."""

    def __init__(
        self,
        fault_state: FaultState,
        nonideality: NonidealityModel,
        timing: TimingModel,
    ) -> None:
        super().__init__(nonideality=nonideality, timing=timing)
        self.fault_state = fault_state
        self._stage_counter = 0

    @property
    def deterministic_build(self) -> bool:
        """True when rebuilding this graph yields bit-identical blocks.

        Only time-varying read disturb breaks build determinism (its
        noise stream is stateful across builds); everything else in
        the fault model is a pure function of the fault map.
        Cacheability gate for frozen templates.
        """
        return self.fault_state.read_disturb_sigma == 0.0

    def _weight_error(self, w: float, precision: bool = False) -> float:
        """Fabrication tolerance first, then this site's runtime faults."""
        w = super()._weight_error(w, precision=precision)
        w = self.fault_state.apply_weight(self._stage_counter, w)
        self._stage_counter += 1
        return w

    def mux(
        self,
        a: int,
        b: int,
        when_close: int,
        when_far: int,
        threshold: float,
        label: str = "",
    ) -> int:
        return super().mux(
            a,
            b,
            when_close,
            when_far,
            threshold + self.fault_state.comparator_offset_v,
            label=label,
        )

    def gate(
        self,
        a: int,
        b: int,
        threshold: float,
        v_high: float,
        v_low: float = 0.0,
        label: str = "",
    ) -> int:
        return super().gate(
            a,
            b,
            threshold + self.fault_state.comparator_offset_v,
            v_high,
            v_low=v_low,
            label=label,
        )
