"""Fault-aware analog block graph.

:class:`FaultedBlockGraph` is a drop-in :class:`~repro.analog.BlockGraph`
that consults a :class:`~repro.faults.state.FaultState` while building:
each memristor-ratio weight (one per ``lin`` term / ``absdiff`` stage)
is assigned the next enabled physical PE site and perturbed by that
site's stuck/drift/mismatch faults, and every comparator threshold
picks up the chip's offset drift.  The graph stays electrically
well-formed — which is exactly why the static ERC layer cannot see
runtime faults and the online BIST of :mod:`repro.faults.bist` exists.
"""

from __future__ import annotations

from ..analog import BlockGraph, NonidealityModel, TimingModel
from .state import FaultState


class FaultedBlockGraph(BlockGraph):
    """A block graph built on a chip carrying runtime faults."""

    def __init__(
        self,
        fault_state: FaultState,
        nonideality: NonidealityModel,
        timing: TimingModel,
    ) -> None:
        super().__init__(nonideality=nonideality, timing=timing)
        self.fault_state = fault_state
        self._stage_counter = 0

    def _weight_error(self, w: float, precision: bool = False) -> float:
        """Fabrication tolerance first, then this site's runtime faults."""
        w = super()._weight_error(w, precision=precision)
        w = self.fault_state.apply_weight(self._stage_counter, w)
        self._stage_counter += 1
        return w

    def mux(
        self,
        a: int,
        b: int,
        when_close: int,
        when_far: int,
        threshold: float,
        label: str = "",
    ) -> int:
        return super().mux(
            a,
            b,
            when_close,
            when_far,
            threshold + self.fault_state.comparator_offset_v,
            label=label,
        )

    def gate(
        self,
        a: int,
        b: int,
        threshold: float,
        v_high: float,
        v_low: float = 0.0,
        label: str = "",
    ) -> int:
        return super().gate(
            a,
            b,
            threshold + self.fault_state.comparator_offset_v,
            v_high,
            v_low=v_low,
            label=label,
        )
