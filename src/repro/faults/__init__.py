"""Fault injection and reliability: keep a degrading rack serving.

The paper fabricates one healthy chip; a data center runs thousands
that age in place.  This package models the runtime failure mechanisms
of the memristor arrays (:mod:`~repro.faults.models`), stamps them
onto simulated chips reproducibly (:mod:`~repro.faults.inject` /
:mod:`~repro.faults.state`), detects them online with golden-vector
self-test (:mod:`~repro.faults.bist`), repairs what the Section 3.3
tuning loop can reach and remaps around what it cannot
(:mod:`~repro.faults.repair`), and measures the whole closed loop
end-to-end through the serving pool (:mod:`~repro.faults.campaign`).

>>> from repro.accelerator import DistanceAccelerator
>>> from repro.faults import FaultInjector, StuckAtFault
>>> chip = DistanceAccelerator()
>>> injector = FaultInjector([StuckAtFault(rate=0.01)], seed=1)
>>> state = injector.inject(chip)
>>> state.n_faulty > 0
True
"""

from .bist import (
    DEGRADED,
    FAILED,
    HEALTHY,
    BistRunner,
    FunctionProbe,
    HealthReport,
)
from .campaign import (
    DEFAULT_RATES,
    CampaignResult,
    PhaseScore,
    RatePoint,
    default_scenario,
    run_campaign,
    smoke_campaign,
)
from .graph import FaultedBlockGraph
from .inject import FaultInjector
from .models import (
    DEFAULT_SCENARIO,
    SCOPES,
    AdcOffsetFault,
    DriftFault,
    FaultModel,
    LostPairFault,
    ReadDisturbFault,
    StuckAtFault,
)
from .repair import RepairReport, SiteRepair, recalibrate
from .state import (
    STUCK_NONE,
    STUCK_ROFF,
    STUCK_RON,
    FaultState,
    fresh_state,
)

__all__ = [
    "AdcOffsetFault",
    "BistRunner",
    "CampaignResult",
    "DEFAULT_RATES",
    "DEFAULT_SCENARIO",
    "DEGRADED",
    "DriftFault",
    "FAILED",
    "FaultInjector",
    "FaultModel",
    "FaultState",
    "FaultedBlockGraph",
    "FunctionProbe",
    "HEALTHY",
    "HealthReport",
    "LostPairFault",
    "PhaseScore",
    "RatePoint",
    "ReadDisturbFault",
    "RepairReport",
    "SCOPES",
    "STUCK_NONE",
    "STUCK_ROFF",
    "STUCK_RON",
    "SiteRepair",
    "StuckAtFault",
    "default_scenario",
    "fresh_state",
    "recalibrate",
    "run_campaign",
    "smoke_campaign",
]
