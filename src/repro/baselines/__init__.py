"""Baselines: measured/modelled CPU and literature accelerator models."""

from .cpu import (
    CALL_OVERHEAD_CYCLES,
    CpuMeasurement,
    CYCLES_PER_DP_CELL,
    CYCLES_PER_STREAM_ELEMENT,
    I5_3470_CLOCK_HZ,
    measure_cpu_time,
    modelled_cpu_time,
    operation_count,
)
from .literature import (
    CALIBRATED_OURS_PER_ELEMENT_S,
    EXISTING_WORKS,
    ExistingWork,
    get_existing_work,
    speedup_vs_existing,
)

__all__ = [
    "CALIBRATED_OURS_PER_ELEMENT_S",
    "CALL_OVERHEAD_CYCLES",
    "CYCLES_PER_DP_CELL",
    "CYCLES_PER_STREAM_ELEMENT",
    "CpuMeasurement",
    "EXISTING_WORKS",
    "ExistingWork",
    "I5_3470_CLOCK_HZ",
    "get_existing_work",
    "measure_cpu_time",
    "modelled_cpu_time",
    "operation_count",
    "speedup_vs_existing",
]
