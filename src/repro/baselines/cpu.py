"""CPU baseline implementations and the i5-3470 cost model.

The paper's Fig. 6(b) compares against C code (MSVC 2015, /O2) on a
quad-core i5-3470 running the same datasets.  Two baselines here:

* **Measured** — straightforward single-threaded Python/numpy DP
  implementations timed with ``perf_counter``; used by the benchmark
  harness for an honest on-this-machine comparison.
* **Modelled** — an operation-count x cycle-cost model of the paper's
  i5-3470 (3.2 GHz, ~1 fused DP cell per ~3 cycles after /O2), which
  removes the Python interpreter constant and reproduces the paper's
  20x-1000x speedup band with its stated shape: speedup grows with
  sequence length for the O(n^2) functions and is smaller for the O(n)
  HamD/MD.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict

import numpy as np

from ..distances import (
    dtw,
    edit,
    hamming,
    hausdorff,
    lcs,
    manhattan,
)
from ..errors import ConfigurationError

#: i5-3470 model: 3.2 GHz nominal clock.
I5_3470_CLOCK_HZ = 3.2e9

#: Effective cycles per DP cell.  The recurrence is a *dependent*
#: chain — abs, three-way min (two cmp+cmov), add, plus loads/stores —
#: with no ILP across cells of one anti-diagonal in the scalar C code
#: the paper compiles; ~15 cycles of dependent latency per cell.
CYCLES_PER_DP_CELL = 15.0

#: Cycles per element for the streaming O(n) functions (abs + add,
#: partially pipelined).
CYCLES_PER_STREAM_ELEMENT = 6.0

#: Fixed per-call overhead cycles (call, setup, first-touch misses).
CALL_OVERHEAD_CYCLES = 300.0


def operation_count(function: str, n: int, m: int = None) -> float:
    """DP cells / stream elements evaluated by the CPU implementation."""
    if m is None:
        m = n
    if n < 1 or m < 1:
        raise ConfigurationError("lengths must be >= 1")
    if function in ("dtw", "lcs", "edit", "hausdorff"):
        return float(n * m)
    if function in ("hamming", "manhattan"):
        return float(n)
    raise ConfigurationError(f"unknown function {function!r}")


def modelled_cpu_time(function: str, n: int, m: int = None) -> float:
    """Modelled i5-3470 single-thread runtime in seconds."""
    ops = operation_count(function, n, m)
    if function in ("hamming", "manhattan"):
        cycles = ops * CYCLES_PER_STREAM_ELEMENT
    else:
        cycles = ops * CYCLES_PER_DP_CELL
    return (cycles + CALL_OVERHEAD_CYCLES) / I5_3470_CLOCK_HZ


_REFERENCE_FNS: Dict[str, Callable[..., float]] = {
    "dtw": dtw,
    "lcs": lcs,
    "edit": edit,
    "hausdorff": hausdorff,
    "hamming": hamming,
    "manhattan": manhattan,
}


@dataclasses.dataclass
class CpuMeasurement:
    """Wall-clock measurement of one software distance computation."""

    function: str
    n: int
    measured_s: float
    modelled_s: float
    repeats: int


def measure_cpu_time(
    function: str,
    p,
    q,
    repeats: int = 5,
    **kwargs,
) -> CpuMeasurement:
    """Best-of-``repeats`` wall time of the software implementation."""
    if function not in _REFERENCE_FNS:
        raise ConfigurationError(f"unknown function {function!r}")
    if repeats < 1:
        raise ConfigurationError("repeats must be >= 1")
    fn = _REFERENCE_FNS[function]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn(p, q, **kwargs)
        best = min(best, time.perf_counter() - start)
    n = np.asarray(p).shape[0]
    m = np.asarray(q).shape[0]
    return CpuMeasurement(
        function=function,
        n=n,
        measured_s=best,
        modelled_s=modelled_cpu_time(function, n, m),
        repeats=repeats,
    )
