"""Models of the cited existing accelerators (Fig. 6(a), Section 4.3).

The paper compares per-element processing time against one prior
accelerator per function — [25] FPGA for DTW, [22] GPU for LCS, [9] GPU
for EdD, [14] GPU for HauD, [29] GPU for HamD, [8] GPU for MD — but
prints only the resulting speedups (a 3.5x-376x band, with LCS and HamD
called out as our fastest).  The cited papers' raw per-element numbers
are not reproduced in the text, so the constants below are *derived*:
each is the accelerator's calibrated per-element latency at n = 40
multiplied by a target speedup consistent with the paper's narrative
(DTW at the band's 3.5x floor against the already-fast FPGA, LCS at the
376x ceiling, HamD near it, EdD/HauD/MD in between).  The derivation is
recorded per entry; the Fig. 6(a) bench recomputes the speedups from
*measured* latencies, so they move honestly if the simulator changes.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from ..errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class ExistingWork:
    """One cited accelerator's modelled operating point."""

    function: str
    reference: str
    platform: str
    per_element_s: float
    power_w: float
    derivation: str


#: Accelerator per-element latencies at n = 40 used for the derivation
#: (measured from the behavioural simulator with the Table 1 timing
#: model; early determination already applied to HamD/MD).
CALIBRATED_OURS_PER_ELEMENT_S: Dict[str, float] = {
    "dtw": 3.27e-9,
    "lcs": 1.19e-9,
    "edit": 2.48e-9,
    "hausdorff": 0.41e-9,
    "hamming": 0.69e-9,
    "manhattan": 0.70e-9,
}

EXISTING_WORKS: Dict[str, ExistingWork] = {
    "dtw": ExistingWork(
        function="dtw",
        reference="[25] Sart et al., ICDE 2010",
        platform="FPGA",
        per_element_s=11.4e-9,
        power_w=4.76,
        derivation="3.27 ns x 3.5 (the paper's speedup floor; the "
        "FPGA systolic array is the strongest prior)",
    ),
    "lcs": ExistingWork(
        function="lcs",
        reference="[22] Ozsoy et al., PMAM 2014",
        platform="GPU",
        per_element_s=447.0e-9,
        power_w=240.0,
        derivation="1.19 ns x 376 (the paper's speedup ceiling, "
        "attributed to LCS)",
    ),
    "edit": ExistingWork(
        function="edit",
        reference="[9] Farivar et al., InPar 2012",
        platform="GPU",
        per_element_s=124.0e-9,
        power_w=175.0,
        derivation="2.48 ns x 50 (mid-band)",
    ),
    "hausdorff": ExistingWork(
        function="hausdorff",
        reference="[14] Kim et al., The Visual Computer 2010",
        platform="GPU",
        per_element_s=12.3e-9,
        power_w=120.0,
        derivation="0.41 ns x 30 (mid-band)",
    ),
    "hamming": ExistingWork(
        function="hamming",
        reference="[29] Vandal & Savvides, BTAS 2010",
        platform="GPU",
        per_element_s=214.0e-9,
        power_w=150.0,
        derivation="0.69 ns x 310 (near-ceiling; the paper calls "
        "HamD one of its two fastest)",
    ),
    "manhattan": ExistingWork(
        function="manhattan",
        reference="[8] Chang et al., SNPD 2009",
        platform="GPU",
        per_element_s=70.0e-9,
        power_w=137.0,
        derivation="0.70 ns x 100 (mid-band)",
    ),
}


def get_existing_work(function: str) -> ExistingWork:
    """The modelled prior accelerator for one distance function."""
    if function not in EXISTING_WORKS:
        raise ConfigurationError(
            f"no existing-work model for {function!r}"
        )
    return EXISTING_WORKS[function]


def speedup_vs_existing(
    function: str, our_per_element_s: float
) -> float:
    """Per-element speedup of a measured latency over the prior work."""
    if our_per_element_s <= 0:
        raise ConfigurationError("latency must be positive")
    return get_existing_work(function).per_element_s / our_per_element_s
