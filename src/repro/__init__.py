"""repro — reproduction of the DAC'17 memristor-based distance accelerator.

Layered architecture (bottom up):

* :mod:`repro.memristor` — device models (Biolek, stochastic Biolek),
  process variation, resistance tuning, crossbar structures.
* :mod:`repro.spice` — an MNA circuit simulator used to validate the
  analog building blocks at element level.
* :mod:`repro.analog` — a fast behavioural block-graph simulator for
  full PE arrays (convergence time + error measurement).
* :mod:`repro.distances` — software reference implementations of the
  six distance functions.
* :mod:`repro.accelerator` — the reconfigurable distance accelerator:
  PEs, configuration library, DAC/ADC, tiling, power model.
* :mod:`repro.datasets`, :mod:`repro.mining` — UCR-style data and the
  data-mining tasks the paper motivates.
* :mod:`repro.baselines`, :mod:`repro.eval` — CPU/literature baselines
  and the per-figure experiment harness.
* :mod:`repro.backends` — the :class:`~repro.backends.DistanceBackend`
  protocol unifying software, single-chip and pooled execution.
* :mod:`repro.serving` — the data-center serving layer: a sharded
  accelerator pool with dynamic batching, caching and metrics.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    accelerator,
    analog,
    backends,
    baselines,
    datacenter,
    datasets,
    distances,
    errors,
    eval,
    memristor,
    mining,
    serving,
    spice,
    validation,
)
from .backends import (  # noqa: F401
    AcceleratorBackend,
    DistanceBackend,
    SoftwareBackend,
    resolve_backend,
)
from .serving import AcceleratorPool, PoolBackend, PoolConfig  # noqa: F401

__all__ = [
    "__version__",
    "AcceleratorBackend",
    "AcceleratorPool",
    "DistanceBackend",
    "PoolBackend",
    "PoolConfig",
    "SoftwareBackend",
    "accelerator",
    "analog",
    "backends",
    "baselines",
    "datacenter",
    "datasets",
    "distances",
    "errors",
    "eval",
    "memristor",
    "mining",
    "resolve_backend",
    "serving",
    "spice",
    "validation",
]
