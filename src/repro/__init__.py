"""repro — reproduction of the DAC'17 memristor-based distance accelerator.

Layered architecture (bottom up):

* :mod:`repro.memristor` — device models (Biolek, stochastic Biolek),
  process variation, resistance tuning, crossbar structures.
* :mod:`repro.spice` — an MNA circuit simulator used to validate the
  analog building blocks at element level.
* :mod:`repro.analog` — a fast behavioural block-graph simulator for
  full PE arrays (convergence time + error measurement).
* :mod:`repro.distances` — software reference implementations of the
  six distance functions.
* :mod:`repro.accelerator` — the reconfigurable distance accelerator:
  PEs, configuration library, DAC/ADC, tiling, power model.
* :mod:`repro.datasets`, :mod:`repro.mining` — UCR-style data and the
  data-mining tasks the paper motivates.
* :mod:`repro.baselines`, :mod:`repro.eval` — CPU/literature baselines
  and the per-figure experiment harness.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    accelerator,
    analog,
    baselines,
    datacenter,
    datasets,
    distances,
    errors,
    eval,
    memristor,
    mining,
    spice,
    validation,
)

__all__ = [
    "__version__",
    "accelerator",
    "analog",
    "baselines",
    "datacenter",
    "datasets",
    "distances",
    "errors",
    "eval",
    "memristor",
    "mining",
    "spice",
    "validation",
]
