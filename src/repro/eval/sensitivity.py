"""Error-source sensitivity analysis (extension A7).

The paper *attributes* Fig. 5's errors — "larger zero drift exists [in]
PEs for DTW and EdD"; "each sub-module ... attached with a fixed small
absolute error" for HamD/MD — without isolating the sources.  This
harness does the isolation: it re-runs each function with exactly one
non-ideality enabled at a time (finite gain, amplifier offsets, diode
drop, comparator offset, memristor-ratio tolerance) and reports each
knob's contribution to the total error, per function.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..analog import NonidealityModel
from ..datasets import load_dataset, sample_pairs
from .fig5 import _SOFTWARE, _distance_kwargs

#: The isolated knob configurations.  Each enables ONE error source at
#: the default chip's magnitude; "none" is the exact reference and
#: "all" the full default chip.
KNOBS: Dict[str, dict] = {
    "none": dict(),
    "finite_gain": dict(open_loop_gain=1.0e4),
    "offsets": dict(offset_sigma=2.0e-4),
    "diode_drop": dict(diode_drop=2.0e-5),
    "comparator": dict(comparator_offset_sigma=5.0e-4),
    "weights": dict(weight_tolerance=0.002),
    "all": dict(
        open_loop_gain=1.0e4,
        offset_sigma=2.0e-4,
        diode_drop=2.0e-5,
        comparator_offset_sigma=5.0e-4,
        weight_tolerance=0.002,
    ),
}

_EXACT = dict(
    open_loop_gain=1.0e12,
    offset_sigma=0.0,
    diode_drop=0.0,
    comparator_offset_sigma=0.0,
    weight_tolerance=0.0,
)


def _model_for(knob: str, seed: int) -> NonidealityModel:
    config = dict(_EXACT)
    config.update(KNOBS[knob])
    return NonidealityModel(seed=seed, **config)


@dataclasses.dataclass
class SensitivityRow:
    """Mean error of one function under one isolated error source."""

    function: str
    knob: str
    mean_error: float


@dataclasses.dataclass
class SensitivityReport:
    rows: List[SensitivityRow]

    def errors_of(self, function: str) -> Dict[str, float]:
        return {
            r.knob: r.mean_error
            for r in self.rows
            if r.function == function
        }

    def dominant_source(self, function: str) -> str:
        """The single knob with the largest isolated error."""
        isolated = {
            k: v
            for k, v in self.errors_of(function).items()
            if k not in ("none", "all")
        }
        return max(isolated, key=isolated.get)

    def table(self) -> str:
        knobs = list(KNOBS)
        header = f"{'function':<10}" + "".join(
            f"{k:>12}" for k in knobs
        )
        lines = [header]
        functions = sorted({r.function for r in self.rows})
        for function in functions:
            errors = self.errors_of(function)
            lines.append(
                f"{function:<10}"
                + "".join(f"{errors[k]:>11.3%} " for k in knobs)
            )
        return "\n".join(lines)


def run_sensitivity(
    functions: Sequence[str] = ("dtw", "edit", "hausdorff", "manhattan"),
    length: int = 16,
    dataset: str = "Symbols",
    n_pairs: int = 2,
    seed: int = 77,
) -> SensitivityReport:
    """One row per (function, knob): mean hybrid error vs software."""
    pairs = sample_pairs(
        load_dataset(dataset), length, seed=seed, n_pairs=n_pairs
    )
    rows: List[SensitivityRow] = []
    for function in functions:
        software = _SOFTWARE[function]
        kwargs = _distance_kwargs(function)
        references = [
            software(p, q, **kwargs) for p, q, _same in pairs
        ]
        for knob in KNOBS:
            chip = DistanceAccelerator(
                nonideality=_model_for(knob, seed),
                quantise_io=False,
            )
            errors = []
            for (p, q, _same), reference in zip(pairs, references):
                value = chip.compute(function, p, q, **kwargs).value
                errors.append(
                    abs(value - reference) / max(abs(reference), 1.0)
                )
            rows.append(
                SensitivityRow(
                    function=function,
                    knob=knob,
                    mean_error=float(np.mean(errors)),
                )
            )
    return SensitivityReport(rows=rows)
