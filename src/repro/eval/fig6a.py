"""Fig. 6(a) reproduction: per-element speedup vs existing works.

"As all existing hardware accelerations and our work have a linear time
complexity of the sequence length, the processing time of each element
in sequences is analyzed for speedup discussion.  For HamD and MD, the
optimization method early determination is adopted, and the point with
one-tenth convergence time is set as Early Point."

The harness measures our per-element latency from the behavioural
simulator (at a configurable length, default 40 — the paper's longest),
applies the 10x early-determination credit to HamD/MD, and divides the
modelled existing-work per-element latencies by it.  Expected outcome:
speedups spanning roughly 3.5x-376x with LCS and HamD among the
largest.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..accelerator.early import EARLY_FRACTION
from ..baselines.literature import EXISTING_WORKS, get_existing_work
from ..datasets import load_dataset, sample_pairs
from .fig5 import ALL_FUNCTIONS, _distance_kwargs

#: Functions that benefit from early determination (row structure).
EARLY_FUNCTIONS = ("hamming", "manhattan")


@dataclasses.dataclass
class Fig6aRow:
    """One bar group of Fig. 6(a)."""

    function: str
    ours_per_element_ns: float
    existing_per_element_ns: float
    existing_platform: str
    existing_reference: str
    speedup: float
    early_determination: bool


@dataclasses.dataclass
class Fig6aResult:
    rows: List[Fig6aRow]

    @property
    def speedup_range(self) -> "tuple[float, float]":
        speedups = [r.speedup for r in self.rows]
        return min(speedups), max(speedups)

    def table(self) -> str:
        lines = [
            f"{'function':<10} {'ours (ns/el)':>13} "
            f"{'existing (ns/el)':>17} {'platform':>9} {'speedup':>9}"
        ]
        for r in self.rows:
            early = " (early)" if r.early_determination else ""
            lines.append(
                f"{r.function:<10} {r.ours_per_element_ns:>13.3f} "
                f"{r.existing_per_element_ns:>17.1f} "
                f"{r.existing_platform:>9} {r.speedup:>8.1f}x{early}"
            )
        lo, hi = self.speedup_range
        lines.append(f"speedup range: {lo:.1f}x - {hi:.1f}x")
        return "\n".join(lines)


def measure_per_element_latency(
    function: str,
    length: int = 40,
    accelerator: Optional[DistanceAccelerator] = None,
    dataset: str = "Symbols",
    seed: int = 7,
) -> float:
    """Mean per-element convergence time (seconds) at one length."""
    if accelerator is None:
        accelerator = DistanceAccelerator(quantise_io=False)
    pairs = sample_pairs(load_dataset(dataset), length, seed=seed)
    kwargs = _distance_kwargs(function)
    times = []
    for p, q, _same in pairs:
        result = accelerator.compute(
            function, p, q, measure_time=True, **kwargs
        )
        times.append(result.convergence_time_s / length)
    return float(np.mean(times))


def run_fig6a(
    functions: Sequence[str] = ALL_FUNCTIONS,
    length: int = 40,
    accelerator: Optional[DistanceAccelerator] = None,
    apply_early_determination: bool = True,
) -> Fig6aResult:
    """Measure speedups against the modelled existing works."""
    rows: List[Fig6aRow] = []
    for function in functions:
        per_element = measure_per_element_latency(
            function, length=length, accelerator=accelerator
        )
        early = (
            apply_early_determination and function in EARLY_FUNCTIONS
        )
        if early:
            per_element *= EARLY_FRACTION
        existing = get_existing_work(function)
        rows.append(
            Fig6aRow(
                function=function,
                ours_per_element_ns=per_element * 1e9,
                existing_per_element_ns=existing.per_element_s * 1e9,
                existing_platform=existing.platform,
                existing_reference=existing.reference,
                speedup=existing.per_element_s / per_element,
                early_determination=early,
            )
        )
    return Fig6aResult(rows=rows)
