"""Experiment harness: one module per paper table/figure."""

from .accuracy import (
    AccuracyReport,
    AccuracyRow,
    run_accuracy_comparison,
)
from .bench import (
    SPEEDUP_FLOOR,
    BenchCase,
    BenchReport,
    run_engine_bench,
)
from .fig5 import (
    ALL_FUNCTIONS,
    EVAL_THRESHOLD,
    Fig5Point,
    Fig5Result,
    growth_ratio,
    linearity_score,
    run_fig5,
)
from .fig6a import (
    EARLY_FUNCTIONS,
    Fig6aResult,
    Fig6aRow,
    measure_per_element_latency,
    run_fig6a,
)
from .fig6b import Fig6bPoint, Fig6bResult, run_fig6b
from .montecarlo import (
    ChipSample,
    MonteCarloResult,
    run_monte_carlo,
    yield_vs_tolerance,
)
from .power_table import PowerRow, PowerTable, run_power_table
from .report import FullReport, full_report
from .sensitivity import (
    KNOBS,
    SensitivityReport,
    SensitivityRow,
    run_sensitivity,
)
from .sweep import (
    BandSweepRow,
    ResolutionSweepRow,
    run_band_sweep,
    run_resolution_sweep,
)

__all__ = [
    "ALL_FUNCTIONS",
    "AccuracyReport",
    "AccuracyRow",
    "BandSweepRow",
    "BenchCase",
    "BenchReport",
    "ChipSample",
    "EARLY_FUNCTIONS",
    "EVAL_THRESHOLD",
    "Fig5Point",
    "Fig5Result",
    "Fig6aResult",
    "Fig6aRow",
    "Fig6bPoint",
    "Fig6bResult",
    "FullReport",
    "KNOBS",
    "MonteCarloResult",
    "PowerRow",
    "PowerTable",
    "ResolutionSweepRow",
    "SPEEDUP_FLOOR",
    "SensitivityReport",
    "SensitivityRow",
    "full_report",
    "growth_ratio",
    "linearity_score",
    "measure_per_element_latency",
    "run_accuracy_comparison",
    "run_band_sweep",
    "run_engine_bench",
    "run_monte_carlo",
    "run_fig5",
    "run_fig6a",
    "run_fig6b",
    "run_power_table",
    "run_resolution_sweep",
    "run_sensitivity",
    "yield_vs_tolerance",
]
