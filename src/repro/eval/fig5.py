"""Fig. 5 reproduction: convergence time & relative error vs length.

Protocol (Section 4.2): for each distance function and each sequence
length, draw a same-class and a different-class pair from each of the
three datasets, run the accelerator, and record (a) the convergence
time — first instant the output stays within 0.1 % of its final value —
and (b) the relative error against the software reference.

The paper's qualitative findings this harness reproduces:

* convergence time is almost linear in length for every function
  except HauD, which flattens beyond length ~10;
* DTW and EdD show the largest relative errors (zero drift through the
  deep PE cascade);
* HamD and MD relative errors grow linearly with length (per-element
  bias accumulating in the row adder).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..distances import dtw, edit, hamming, hausdorff, lcs, manhattan
from ..datasets import (
    evaluation_lengths,
    list_datasets,
    load_dataset,
    sample_pairs,
)

#: Match threshold (sequence-value units) used for the thresholded
#: functions throughout the evaluation; z-normalised data makes 0.5 a
#: reasonable application-agnostic choice.
EVAL_THRESHOLD = 0.5

_SOFTWARE = {
    "dtw": dtw,
    "lcs": lcs,
    "edit": edit,
    "hausdorff": hausdorff,
    "hamming": hamming,
    "manhattan": manhattan,
}

ALL_FUNCTIONS = tuple(_SOFTWARE)


@dataclasses.dataclass
class Fig5Point:
    """One (function, length) aggregate of the Fig. 5 sweep."""

    function: str
    length: int
    mean_convergence_ns: float
    mean_relative_error: float
    n_runs: int


@dataclasses.dataclass
class Fig5Result:
    """All points of one Fig. 5 reproduction run."""

    points: List[Fig5Point]

    def series(self, function: str) -> "tuple[List[int], List[float], List[float]]":
        """(lengths, convergence_ns, relative_error) for one function."""
        rows = sorted(
            (p for p in self.points if p.function == function),
            key=lambda p: p.length,
        )
        return (
            [p.length for p in rows],
            [p.mean_convergence_ns for p in rows],
            [p.mean_relative_error for p in rows],
        )

    def table(self) -> str:
        """Printable table, one row per (function, length)."""
        lines = [
            f"{'function':<10} {'len':>4} {'t_conv (ns)':>12} "
            f"{'rel. error':>11} {'runs':>5}"
        ]
        for p in self.points:
            lines.append(
                f"{p.function:<10} {p.length:>4} "
                f"{p.mean_convergence_ns:>12.2f} "
                f"{p.mean_relative_error:>10.3%} {p.n_runs:>5}"
            )
        return "\n".join(lines)


def _distance_kwargs(function: str) -> dict:
    if function in ("lcs", "edit", "hamming"):
        return {"threshold": EVAL_THRESHOLD}
    return {}


def run_fig5(
    functions: Sequence[str] = ALL_FUNCTIONS,
    lengths: Optional[Sequence[int]] = None,
    datasets: Optional[Sequence[str]] = None,
    pairs_per_dataset: int = 1,
    accelerator: Optional[DistanceAccelerator] = None,
    seed: int = 42,
    measure_time: bool = True,
) -> Fig5Result:
    """Run the Fig. 5 sweep and aggregate per (function, length).

    ``measure_time=False`` skips the transient (errors only), which the
    fast test suite uses.  The accelerator defaults to the paper's
    Fig. 5 setting: computation-only, no converter quantisation
    ("we focus on the computation part in the simulation").
    """
    if lengths is None:
        lengths = evaluation_lengths()
    if datasets is None:
        datasets = list_datasets()
    if accelerator is None:
        accelerator = DistanceAccelerator(quantise_io=False)
    loaded = [load_dataset(name) for name in datasets]

    points: List[Fig5Point] = []
    for function in functions:
        kwargs = _distance_kwargs(function)
        software = _SOFTWARE[function]
        for length in lengths:
            times: List[float] = []
            errors: List[float] = []
            for d_index, dataset in enumerate(loaded):
                pair_list = sample_pairs(
                    dataset,
                    length,
                    seed=seed + d_index,
                    n_pairs=pairs_per_dataset,
                )
                for p, q, _same in pair_list:
                    reference = software(p, q, **kwargs)
                    result = accelerator.compute(
                        function,
                        p,
                        q,
                        measure_time=measure_time,
                        **kwargs,
                    )
                    # Hybrid relative/absolute error: references can be
                    # exactly zero (a same-class pair matching at every
                    # position), where a pure relative error is
                    # undefined; below one distance unit the error is
                    # reported absolutely.
                    scale = max(abs(reference), 1.0)
                    errors.append(
                        abs(result.value - reference) / scale
                    )
                    if measure_time:
                        times.append(result.convergence_time_s)
            points.append(
                Fig5Point(
                    function=function,
                    length=int(length),
                    mean_convergence_ns=(
                        float(np.mean(times)) * 1e9 if times else 0.0
                    ),
                    mean_relative_error=float(np.mean(errors)),
                    n_runs=len(errors),
                )
            )
    return Fig5Result(points=points)


def linearity_score(lengths: Sequence[int], values: Sequence[float]) -> float:
    """R^2 of a linear fit — used to verify the paper's linearity claim."""
    x = np.asarray(lengths, dtype=np.float64)
    y = np.asarray(values, dtype=np.float64)
    if x.size < 3 or np.allclose(y, y[0]):
        return 1.0
    coeffs = np.polyfit(x, y, 1)
    fit = np.polyval(coeffs, x)
    ss_res = float(np.sum((y - fit) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        return 1.0
    return 1.0 - ss_res / ss_tot


def growth_ratio(values: Sequence[float]) -> float:
    """last/first — near 1 means flat (the HauD signature)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size < 2 or v[0] == 0:
        return 1.0
    return float(v[-1] / v[0])
