"""Mining-accuracy impact of analog error (extension A6).

Section 4.2 claims the accelerator's error "can be regarded as a bias,
which has no significant influence on the relation of results" — i.e.
mining *decisions* survive the analog noise.  This harness tests that
end to end: 1-NN classification on the three datasets with software
distances vs accelerated distances, reporting both accuracies and the
fraction of individual decisions that flipped.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..datasets import formalise, load_dataset
from ..mining import KnnClassifier
from .fig5 import EVAL_THRESHOLD


@dataclasses.dataclass
class AccuracyRow:
    """One (dataset, function) decision-fidelity comparison."""

    dataset: str
    function: str
    software_accuracy: float
    hardware_accuracy: float
    decision_agreement: float
    n_test: int


@dataclasses.dataclass
class AccuracyReport:
    rows: List[AccuracyRow]

    def table(self) -> str:
        lines = [
            f"{'dataset':<9} {'function':<10} {'sw acc':>7} "
            f"{'hw acc':>7} {'agree':>7} {'n':>4}"
        ]
        for r in self.rows:
            lines.append(
                f"{r.dataset:<9} {r.function:<10} "
                f"{r.software_accuracy:>7.0%} "
                f"{r.hardware_accuracy:>7.0%} "
                f"{r.decision_agreement:>7.0%} {r.n_test:>4}"
            )
        return "\n".join(lines)

    @property
    def worst_agreement(self) -> float:
        return min(r.decision_agreement for r in self.rows)


def _distance_kwargs(function: str) -> dict:
    if function in ("lcs", "edit", "hamming"):
        return {"threshold": EVAL_THRESHOLD}
    return {}


def run_accuracy_comparison(
    functions: Sequence[str] = ("dtw", "manhattan", "hamming"),
    datasets: Sequence[str] = ("Beef", "Symbols", "OSULeaf"),
    length: int = 16,
    train_per_dataset: int = 12,
    test_per_dataset: int = 8,
    accelerator: Optional[DistanceAccelerator] = None,
) -> AccuracyReport:
    """1-NN classification: software vs accelerator distances."""
    if accelerator is None:
        accelerator = DistanceAccelerator(quantise_io=False)
    rows: List[AccuracyRow] = []
    for dataset_name in datasets:
        data = load_dataset(dataset_name)
        train_x = [
            formalise(s, length)
            for s in data.train_x[:train_per_dataset]
        ]
        train_y = data.train_y[:train_per_dataset]
        test_x = [
            formalise(s, length) for s in data.test_x[:test_per_dataset]
        ]
        test_y = data.test_y[:test_per_dataset]
        for function in functions:
            kwargs = _distance_kwargs(function)
            software = KnnClassifier(
                distance=function, distance_kwargs=kwargs
            ).fit(train_x, train_y)
            hardware = KnnClassifier(
                distance=accelerator.distance(function, **kwargs)
            ).fit(train_x, train_y)
            sw_pred = software.predict(test_x)
            hw_pred = hardware.predict(test_x)
            rows.append(
                AccuracyRow(
                    dataset=dataset_name,
                    function=function,
                    software_accuracy=float(
                        np.mean(sw_pred == test_y)
                    ),
                    hardware_accuracy=float(
                        np.mean(hw_pred == test_y)
                    ),
                    decision_agreement=float(
                        np.mean(sw_pred == hw_pred)
                    ),
                    n_test=len(test_x),
                )
            )
    return AccuracyReport(rows=rows)
