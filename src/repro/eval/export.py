"""CSV export of regenerated figure data.

The paper's figures are plots; this repository regenerates their
underlying *series*.  These helpers dump them as plain CSV so any
plotting tool can redraw Fig. 5 / Fig. 6 (no plotting dependency is
taken: the environment is offline and headless).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Union

from .fig5 import Fig5Result
from .fig6a import Fig6aResult
from .fig6b import Fig6bResult
from .power_table import PowerTable

PathLike = Union[str, Path]


def export_fig5_csv(result: Fig5Result, path: PathLike) -> Path:
    """One row per (function, length): convergence time + error."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "function",
                "length",
                "convergence_time_ns",
                "relative_error",
                "runs",
            ]
        )
        for p in result.points:
            writer.writerow(
                [
                    p.function,
                    p.length,
                    f"{p.mean_convergence_ns:.6g}",
                    f"{p.mean_relative_error:.6g}",
                    p.n_runs,
                ]
            )
    return path


def export_fig6a_csv(result: Fig6aResult, path: PathLike) -> Path:
    """One row per function: ours vs existing per-element latency."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "function",
                "ours_ns_per_element",
                "existing_ns_per_element",
                "platform",
                "speedup",
                "early_determination",
            ]
        )
        for r in result.rows:
            writer.writerow(
                [
                    r.function,
                    f"{r.ours_per_element_ns:.6g}",
                    f"{r.existing_per_element_ns:.6g}",
                    r.existing_platform,
                    f"{r.speedup:.6g}",
                    int(r.early_determination),
                ]
            )
    return path


def export_fig6b_csv(result: Fig6bResult, path: PathLike) -> Path:
    """One row per (function, length): runtimes and speedup."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "function",
                "length",
                "ours_ns",
                "cpu_model_ns",
                "speedup",
            ]
        )
        for p in result.points:
            writer.writerow(
                [
                    p.function,
                    p.length,
                    f"{p.ours_ns:.6g}",
                    f"{p.cpu_model_ns:.6g}",
                    f"{p.speedup_vs_model:.6g}",
                ]
            )
    return path


def export_power_csv(table: PowerTable, path: PathLike) -> Path:
    """One row per function: power and energy comparison."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "function",
                "ours_w",
                "paper_w",
                "existing_w",
                "speedup",
                "energy_improvement",
            ]
        )
        for r in table.rows:
            writer.writerow(
                [
                    r.function,
                    f"{r.ours_w:.6g}",
                    f"{r.paper_reported_w:.6g}",
                    f"{r.existing_w:.6g}",
                    f"{r.speedup:.6g}",
                    f"{r.energy_improvement:.6g}",
                ]
            )
    return path
