"""Monte-Carlo chip analysis: error distributions and parametric yield.

An extension beyond the paper's single-chip SPICE runs: every
:class:`~repro.analog.NonidealityModel` seed is one fabricated chip
with its own systematic offsets, comparator thresholds and residual
ratio errors.  Sweeping seeds gives the across-chip error distribution
and a *parametric yield* — the fraction of chips whose worst-case
relative error stays inside a specification — which is the question a
real deployment of the accelerator would ask first.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..analog import NonidealityModel
from ..datasets import load_dataset, sample_pairs
from .fig5 import _SOFTWARE, _distance_kwargs


@dataclasses.dataclass
class ChipSample:
    """Error statistics of one simulated chip instance."""

    seed: int
    mean_error: float
    max_error: float


@dataclasses.dataclass
class MonteCarloResult:
    """Across-chip error distribution for one function."""

    function: str
    chips: List[ChipSample]
    specification: float

    @property
    def mean_of_means(self) -> float:
        return float(np.mean([c.mean_error for c in self.chips]))

    @property
    def worst_chip(self) -> ChipSample:
        return max(self.chips, key=lambda c: c.max_error)

    @property
    def yield_fraction(self) -> float:
        """Fraction of chips with max error within the specification.

        ``nan`` for an empty sample: zero chips have no yield, and
        silently reporting 0 % (or 100 %) would poison tolerance
        sweeps that aggregate these fractions.
        """
        if not self.chips:
            return float("nan")
        passing = sum(
            c.max_error <= self.specification for c in self.chips
        )
        return passing / len(self.chips)

    def table(self) -> str:
        lines = [
            f"function {self.function}: {len(self.chips)} chips, "
            f"spec {self.specification:.1%}",
            f"  mean error across chips: {self.mean_of_means:.3%}",
            f"  worst chip (seed {self.worst_chip.seed}): "
            f"max error {self.worst_chip.max_error:.3%}",
            f"  parametric yield: {self.yield_fraction:.0%}",
        ]
        return "\n".join(lines)


def run_monte_carlo(
    function: str,
    n_chips: int = 20,
    length: int = 16,
    dataset: str = "Symbols",
    specification: float = 0.05,
    pairs_per_chip: int = 2,
    base_model: Optional[NonidealityModel] = None,
    seed0: int = 1000,
) -> MonteCarloResult:
    """Sweep chip seeds and collect per-chip error statistics.

    Error metric matches Fig. 5's hybrid relative/absolute scale.
    """
    if base_model is None:
        base_model = NonidealityModel()
    software = _SOFTWARE[function]
    kwargs = _distance_kwargs(function)
    pairs = sample_pairs(
        load_dataset(dataset), length, seed=7, n_pairs=pairs_per_chip
    )
    chips: List[ChipSample] = []
    for k in range(n_chips):
        model = dataclasses.replace(base_model, seed=seed0 + k)
        chip = DistanceAccelerator(
            nonideality=model, quantise_io=False
        )
        # Same-length pairs share one graph structure per chip, so the
        # whole probe set settles in a single vectorized pass
        # (bit-identical to per-pair compute calls).
        results = chip.compute_many(
            function, [(p, q) for p, q, _same in pairs], **kwargs
        )
        errors = []
        for (p, q, _same), result in zip(pairs, results):
            reference = software(p, q, **kwargs)
            errors.append(
                abs(result.value - reference)
                / max(abs(reference), 1.0)
            )
        chips.append(
            ChipSample(
                seed=seed0 + k,
                mean_error=float(np.mean(errors)),
                max_error=float(np.max(errors)),
            )
        )
    return MonteCarloResult(
        function=function, chips=chips, specification=specification
    )


def yield_vs_tolerance(
    function: str = "dtw",
    tolerances: Sequence[float] = (0.0, 0.002, 0.01, 0.05),
    n_chips: int = 12,
    specification: float = 0.05,
    **kwargs,
) -> Dict[float, float]:
    """Parametric yield as a function of residual ratio tolerance.

    Connects the Section 3.3 tuning quality to manufacturability: the
    looser the post-tuning tolerance, the fewer chips meet spec.
    """
    out: Dict[float, float] = {}
    for tolerance in tolerances:
        model = NonidealityModel(weight_tolerance=tolerance)
        result = run_monte_carlo(
            function,
            n_chips=n_chips,
            base_model=model,
            specification=specification,
            **kwargs,
        )
        out[float(tolerance)] = result.yield_fraction
    return out
