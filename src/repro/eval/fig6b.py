"""Fig. 6(b) reproduction: runtime & speedup vs a CPU implementation.

The paper compares whole-computation runtime against single-threaded C
on an i5-3470 across sequence lengths, reporting 20x-1000x speedups that
*grow with length* for the O(n^2) functions and are smaller for the
O(n) HamD/MD.  Both effects are asymptotic: the accelerator computes a
whole DP matrix in O(n) analog settling time, so the O(n^2) CPU loses
ground linearly, while O(n) functions only win by the (constant)
per-element gap.

Two CPU baselines are reported: the i5-3470 cycle model (the paper's
hardware) and, optionally, wall-clock measurements of this machine's
software implementations.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..accelerator import DistanceAccelerator
from ..accelerator.early import EARLY_FRACTION
from ..baselines.cpu import measure_cpu_time, modelled_cpu_time
from ..datasets import load_dataset, sample_pairs
from .fig5 import ALL_FUNCTIONS, _distance_kwargs
from .fig6a import EARLY_FUNCTIONS


@dataclasses.dataclass
class Fig6bPoint:
    """One (function, length) point of Fig. 6(b)."""

    function: str
    length: int
    ours_ns: float
    cpu_model_ns: float
    cpu_measured_ns: Optional[float]
    speedup_vs_model: float


@dataclasses.dataclass
class Fig6bResult:
    points: List[Fig6bPoint]

    def series(self, function: str):
        rows = sorted(
            (p for p in self.points if p.function == function),
            key=lambda p: p.length,
        )
        return (
            [p.length for p in rows],
            [p.ours_ns for p in rows],
            [p.speedup_vs_model for p in rows],
        )

    def table(self) -> str:
        lines = [
            f"{'function':<10} {'len':>4} {'ours (ns)':>10} "
            f"{'cpu model (ns)':>15} {'speedup':>9}"
        ]
        for p in self.points:
            lines.append(
                f"{p.function:<10} {p.length:>4} {p.ours_ns:>10.1f} "
                f"{p.cpu_model_ns:>15.1f} {p.speedup_vs_model:>8.1f}x"
            )
        return "\n".join(lines)


def run_fig6b(
    functions: Sequence[str] = ALL_FUNCTIONS,
    lengths: Sequence[int] = (10, 20, 30, 40),
    accelerator: Optional[DistanceAccelerator] = None,
    dataset: str = "OSULeaf",
    seed: int = 11,
    measure_wall_clock: bool = False,
    apply_early_determination: bool = True,
) -> Fig6bResult:
    """Run the CPU-comparison sweep."""
    if accelerator is None:
        accelerator = DistanceAccelerator(quantise_io=False)
    data = load_dataset(dataset)
    points: List[Fig6bPoint] = []
    for function in functions:
        kwargs = _distance_kwargs(function)
        for length in lengths:
            pairs = sample_pairs(data, length, seed=seed)
            ours: List[float] = []
            measured: List[float] = []
            for p, q, _same in pairs:
                result = accelerator.compute(
                    function, p, q, measure_time=True, **kwargs
                )
                t = result.convergence_time_s
                if (
                    apply_early_determination
                    and function in EARLY_FUNCTIONS
                ):
                    t *= EARLY_FRACTION
                ours.append(t)
                if measure_wall_clock:
                    measured.append(
                        measure_cpu_time(
                            function, p, q, **kwargs
                        ).measured_s
                    )
            ours_mean = float(np.mean(ours))
            cpu_model = modelled_cpu_time(function, length)
            points.append(
                Fig6bPoint(
                    function=function,
                    length=int(length),
                    ours_ns=ours_mean * 1e9,
                    cpu_model_ns=cpu_model * 1e9,
                    cpu_measured_ns=(
                        float(np.mean(measured)) * 1e9
                        if measured
                        else None
                    ),
                    speedup_vs_model=cpu_model / ours_mean,
                )
            )
    return Fig6bResult(points=points)
