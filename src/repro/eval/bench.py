"""Engine benchmark: the BENCH trajectory's first artefact.

Times the vectorized execution engine (levelized settles + graph
template cache + batched solves) against the seed engine's behaviour
(Jacobi sweeps, graph rebuilt per settle) on three representative
workloads:

* ``single_dtw`` — repeated DTW n=40 ``compute`` on the paper's
  128x128 array (single tile; the template cache is warm after the
  first query, which is the serving steady state);
* ``tiled_dtw`` — DTW n=40 on a 16x16 array (nine DP tiles per query;
  exercises the boundary-rebinding path);
* ``batch_manhattan`` — one 128-wide ``batch_pairs`` settle of n=16
  Manhattan comparisons (the dynamic batcher's primitive).

Every case checks bit-identical values between the two engines before
timing — a benchmark of a wrong answer is worse than no benchmark.
Results land in ``BENCH_engine.json`` via ``repro bench``.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Callable, Dict, List, Optional

import numpy as np

from ..accelerator import DistanceAccelerator
from ..accelerator.params import PAPER_PARAMS

#: Acceptance floors (see ISSUE 4): warm-cache single compute and the
#: batched settle must beat the seed engine by at least this much.
SPEEDUP_FLOOR = {"single_dtw": 5.0, "batch_manhattan": 3.0}


@dataclasses.dataclass(frozen=True)
class BenchCase:
    """One workload's timing comparison."""

    name: str
    fast_s: float
    baseline_s: float
    queries_per_s: float
    baseline_queries_per_s: float
    speedup: float
    equivalent: bool
    repeats: int

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class BenchReport:
    """The full engine benchmark, ready for ``BENCH_engine.json``."""

    cases: List[BenchCase]
    template_cache_default: bool
    levelized_default: bool
    smoke: bool
    seed: int

    @property
    def equivalent(self) -> bool:
        return all(c.equivalent for c in self.cases)

    @property
    def ok(self) -> bool:
        """True when the run is meaningful: the fast path is what a
        plain ``DistanceAccelerator()`` serves, and both engines agree
        bit-for-bit on every case."""
        return (
            self.template_cache_default
            and self.levelized_default
            and self.equivalent
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "template_cache_default": self.template_cache_default,
            "levelized_default": self.levelized_default,
            "equivalent": self.equivalent,
            "ok": self.ok,
            "smoke": self.smoke,
            "seed": self.seed,
            "speedup_floors": dict(SPEEDUP_FLOOR),
            "cases": [c.as_dict() for c in self.cases],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def table(self) -> str:
        lines = [
            f"{'case':<16} {'fast q/s':>10} {'seed q/s':>10} "
            f"{'speedup':>8} {'equal':>6}"
        ]
        for c in self.cases:
            lines.append(
                f"{c.name:<16} {c.queries_per_s:>10.2f} "
                f"{c.baseline_queries_per_s:>10.2f} "
                f"{c.speedup:>7.1f}x "
                f"{'yes' if c.equivalent else 'NO':>6}"
            )
        lines.append(
            "-- template cache default: "
            f"{'yes' if self.template_cache_default else 'NO'}, "
            f"levelized default: "
            f"{'yes' if self.levelized_default else 'NO'}"
        )
        return "\n".join(lines)


def _time_case(
    name: str,
    fast: Callable[[], np.ndarray],
    baseline: Callable[[], np.ndarray],
    repeats: int,
) -> BenchCase:
    """Warm both engines (checking equivalence), then time best-of-N.

    The warm-up call is deliberate, not a flaw: it programs the fast
    engine's template so the timed loop measures the serving steady
    state, which is what the cache exists for.
    """
    fast_values = fast()
    baseline_values = baseline()
    equivalent = bool(
        np.array_equal(
            np.asarray(fast_values), np.asarray(baseline_values)
        )
    )
    fast_s = min(
        _timed(fast) for _ in range(repeats)
    )
    baseline_s = min(
        _timed(baseline) for _ in range(repeats)
    )
    return BenchCase(
        name=name,
        fast_s=fast_s,
        baseline_s=baseline_s,
        queries_per_s=1.0 / fast_s if fast_s > 0 else float("inf"),
        baseline_queries_per_s=(
            1.0 / baseline_s if baseline_s > 0 else float("inf")
        ),
        speedup=baseline_s / fast_s if fast_s > 0 else float("inf"),
        equivalent=equivalent,
        repeats=repeats,
    )


def _timed(fn: Callable[[], np.ndarray]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_engine_bench(
    smoke: bool = False,
    repeats: Optional[int] = None,
    seed: int = 0,
) -> BenchReport:
    """Run the three-case engine benchmark.

    ``smoke`` keeps the repeat count minimal for CI; ``repeats``
    overrides it.  The baseline accelerators disable the template
    cache and solve with Jacobi sweeps — the seed engine's execution
    strategy on today's graph code, which is the honest lower bound
    available without checking out the old tree.
    """
    if repeats is None:
        repeats = 1 if smoke else 3
    rng = np.random.default_rng(seed)
    fast_chip = DistanceAccelerator()
    seed_chip = DistanceAccelerator(
        use_template_cache=False, solver="jacobi"
    )
    probe = DistanceAccelerator()
    info = probe.template_cache_info()
    template_cache_default = bool(info["enabled"])
    levelized_default = info["solver"] == "levelized"

    cases: List[BenchCase] = []

    # 1. Repeated single-query DTW n=40 (paper's Fig. 6 length).
    p40 = rng.normal(size=40)
    q40 = rng.normal(size=40)
    cases.append(
        _time_case(
            "single_dtw",
            lambda: fast_chip.compute("dtw", p40, q40).value,
            lambda: seed_chip.compute("dtw", p40, q40).value,
            repeats,
        )
    )

    # 2. Tiled DTW n=40 on a 16x16 array: nine tiles, boundary
    #    conditions rebound per tile.
    small = dataclasses.replace(
        PAPER_PARAMS, array_rows=16, array_cols=16
    )
    fast_small = DistanceAccelerator(params=small, validate=False)
    seed_small = DistanceAccelerator(
        params=small,
        validate=False,
        use_template_cache=False,
        solver="jacobi",
    )
    cases.append(
        _time_case(
            "tiled_dtw",
            lambda: fast_small.compute("dtw", p40, q40).value,
            lambda: seed_small.compute("dtw", p40, q40).value,
            repeats,
        )
    )

    # 3. One 128-wide manhattan batch_pairs settle (n=16 per pair).
    batch_pairs = [
        (rng.normal(size=16), rng.normal(size=16)) for _ in range(128)
    ]
    cases.append(
        _time_case(
            "batch_manhattan",
            lambda: fast_chip.batch_pairs(
                "manhattan", batch_pairs
            ).values,
            lambda: seed_chip.batch_pairs(
                "manhattan", batch_pairs
            ).values,
            repeats,
        )
    )

    return BenchReport(
        cases=cases,
        template_cache_default=template_cache_default,
        levelized_default=levelized_default,
        smoke=smoke,
        seed=seed,
    )
