"""Ablation sweeps (experiment A3 of DESIGN.md).

Two design-choice sweeps the paper fixes without exploring:

* **Sakoe-Chiba band fraction** — the Section 4.3 power analysis uses
  R = 5 % x n; this sweep shows accuracy (vs unconstrained DTW) and
  active-PE count (power) across fractions.
* **Voltage resolution** — Table 1 fixes 20 mV per unit "considering
  sequence length"; this sweep shows the accuracy/overflow trade-off:
  finer resolution loses signal under analog offsets, coarser
  resolution drives DP voltages toward the rails.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import numpy as np

from ..accelerator import (
    AcceleratorParameters,
    DistanceAccelerator,
    active_pe_count,
)
from ..datasets import load_dataset, sample_pairs
from ..distances import dtw


@dataclasses.dataclass
class BandSweepRow:
    band_fraction: float
    mean_abs_band_gap: float
    mean_relative_error_vs_sw: float
    active_pes_at_128: float


@dataclasses.dataclass
class ResolutionSweepRow:
    resolution_mv: float
    mean_relative_error: float
    overflow_fraction: float
    max_output_voltage: float


def run_band_sweep(
    fractions: Sequence[float] = (0.025, 0.05, 0.1, 0.25, 1.0),
    length: int = 24,
    dataset: str = "Beef",
    seed: int = 5,
    n_pairs: int = 2,
) -> List[BandSweepRow]:
    """Accuracy/power trade-off of the Sakoe-Chiba constraint.

    ``mean_abs_band_gap`` is the *software* gap between banded and
    unconstrained DTW (how much the constraint distorts the metric);
    ``mean_relative_error_vs_sw`` is the accelerator's error against
    the banded software reference at the same fraction.
    """
    accelerator = DistanceAccelerator(quantise_io=False)
    pairs = sample_pairs(
        load_dataset(dataset), length, seed=seed, n_pairs=n_pairs
    )
    rows: List[BandSweepRow] = []
    for fraction in fractions:
        gaps: List[float] = []
        errors: List[float] = []
        for p, q, _same in pairs:
            unbounded = dtw(p, q)
            banded = dtw(p, q, band=fraction)
            gaps.append(abs(banded - unbounded))
            hw = accelerator.compute("dtw", p, q, band=fraction).value
            errors.append(abs(hw - banded) / max(abs(banded), 1e-9))
        rows.append(
            BandSweepRow(
                band_fraction=float(fraction),
                mean_abs_band_gap=float(np.mean(gaps)),
                mean_relative_error_vs_sw=float(np.mean(errors)),
                active_pes_at_128=active_pe_count(
                    "dtw",
                    128,
                    params=AcceleratorParameters(
                        band_fraction=fraction
                    ),
                ),
            )
        )
    return rows


def run_resolution_sweep(
    resolutions_mv: Sequence[float] = (5.0, 10.0, 20.0, 40.0),
    function: str = "dtw",
    length: int = 24,
    dataset: str = "Symbols",
    seed: int = 9,
    n_pairs: int = 2,
) -> List[ResolutionSweepRow]:
    """Accuracy/overflow trade-off of the value-to-voltage scale."""
    from ..distances import dtw as sw_dtw

    pairs = sample_pairs(
        load_dataset(dataset), length, seed=seed, n_pairs=n_pairs
    )
    rows: List[ResolutionSweepRow] = []
    for res_mv in resolutions_mv:
        params = AcceleratorParameters(
            voltage_resolution=res_mv * 1e-3
        )
        accelerator = DistanceAccelerator(
            params=params, quantise_io=False
        )
        errors: List[float] = []
        overflows: List[bool] = []
        max_v = 0.0
        for p, q, _same in pairs:
            reference = sw_dtw(p, q)
            result = accelerator.compute(function, p, q)
            errors.append(
                abs(result.value - reference)
                / max(abs(reference), 1e-9)
            )
            overflows.append(result.overflow)
            max_v = max(max_v, result.raw_voltage)
        rows.append(
            ResolutionSweepRow(
                resolution_mv=float(res_mv),
                mean_relative_error=float(np.mean(errors)),
                overflow_fraction=float(np.mean(overflows)),
                max_output_voltage=max_v,
            )
        )
    return rows
