"""Section 4.3 reproduction: power and energy-efficiency analysis.

Regenerates the in-text power table — per-function accelerator power
(op-amps, memristors, DAC, ADC), the existing works' power draws, and
the energy-efficiency improvement ``speedup x P_existing / P_ours`` —
next to the paper's reported values.

Note recorded for EXPERIMENTS.md: the paper's stated energy band
(26.7x-8767x) is not jointly derivable from its own speedup band
(3.5x-376x) and power figures; the lower end matches DTW
(3.5 x 4.76 / 0.58 = 28.7) but the upper end is inconsistent with
LCS at 376x (which yields ~3.0e4).  We report what the model gives.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from ..accelerator.power import (
    PAPER_REPORTED_POWER_W,
    accelerator_power,
    energy_efficiency_improvement,
)
from ..baselines.literature import get_existing_work
from .fig5 import ALL_FUNCTIONS


@dataclasses.dataclass
class PowerRow:
    """One function's power/energy comparison row."""

    function: str
    ours_w: float
    paper_reported_w: float
    existing_w: float
    speedup: float
    energy_improvement: float

    @property
    def power_deviation(self) -> float:
        """Relative deviation of our model from the paper's total."""
        return abs(self.ours_w / self.paper_reported_w - 1.0)


@dataclasses.dataclass
class PowerTable:
    rows: List[PowerRow]

    @property
    def energy_range(self) -> "tuple[float, float]":
        values = [r.energy_improvement for r in self.rows]
        return min(values), max(values)

    def table(self) -> str:
        lines = [
            f"{'function':<10} {'ours (W)':>9} {'paper (W)':>10} "
            f"{'existing (W)':>13} {'speedup':>9} {'energy gain':>12}"
        ]
        for r in self.rows:
            lines.append(
                f"{r.function:<10} {r.ours_w:>9.2f} "
                f"{r.paper_reported_w:>10.2f} {r.existing_w:>13.2f} "
                f"{r.speedup:>8.1f}x {r.energy_improvement:>11.1f}x"
            )
        lo, hi = self.energy_range
        lines.append(
            f"energy-efficiency improvement range: "
            f"{lo:.1f}x - {hi:.1f}x (paper: 26.7x - 8767x)"
        )
        return "\n".join(lines)


def run_power_table(
    speedups: Optional[dict] = None,
    functions: Sequence[str] = ALL_FUNCTIONS,
    calibrated: bool = True,
) -> PowerTable:
    """Build the Section 4.3 comparison table.

    ``speedups`` maps function -> measured per-element speedup (from
    the Fig. 6(a) harness); when omitted, the derivation targets of the
    literature model are used (existing latency / calibrated ours).
    """
    from ..baselines.literature import (
        CALIBRATED_OURS_PER_ELEMENT_S,
        EXISTING_WORKS,
    )

    rows: List[PowerRow] = []
    for function in functions:
        if speedups is not None and function in speedups:
            speedup = float(speedups[function])
        else:
            speedup = (
                EXISTING_WORKS[function].per_element_s
                / CALIBRATED_OURS_PER_ELEMENT_S[function]
            )
        ours = accelerator_power(
            function, calibrated=calibrated
        ).total_w
        rows.append(
            PowerRow(
                function=function,
                ours_w=ours,
                paper_reported_w=PAPER_REPORTED_POWER_W[function],
                existing_w=get_existing_work(function).power_w,
                speedup=speedup,
                energy_improvement=energy_efficiency_improvement(
                    function, speedup, calibrated=calibrated
                ),
            )
        )
    return PowerTable(rows=rows)
