"""Aggregated experiment report (everything the paper's Section 4 shows).

:func:`full_report` runs every harness at a chosen fidelity and prints
the paper-style tables; the ``examples/reproduce_paper.py`` script and
the benchmark suite both drive it.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from .fig5 import Fig5Result, run_fig5
from .fig6a import Fig6aResult, run_fig6a
from .fig6b import Fig6bResult, run_fig6b
from .power_table import PowerTable, run_power_table


@dataclasses.dataclass
class FullReport:
    """Container for all regenerated artefacts."""

    fig5: Fig5Result
    fig6a: Fig6aResult
    fig6b: Fig6bResult
    power: PowerTable

    def render(self) -> str:
        sections = [
            "=" * 68,
            "Fig. 5 — convergence time and relative error vs length",
            "=" * 68,
            self.fig5.table(),
            "",
            "=" * 68,
            "Fig. 6(a) — per-element speedup vs existing works",
            "=" * 68,
            self.fig6a.table(),
            "",
            "=" * 68,
            "Fig. 6(b) — runtime and speedup vs CPU (i5-3470 model)",
            "=" * 68,
            self.fig6b.table(),
            "",
            "=" * 68,
            "Section 4.3 — power and energy efficiency",
            "=" * 68,
            self.power.table(),
        ]
        return "\n".join(sections)


def full_report(
    lengths: Sequence[int] = (10, 20, 30, 40),
    fig6a_length: int = 40,
    quick: bool = False,
) -> FullReport:
    """Run every experiment; ``quick=True`` shrinks the sweeps."""
    if quick:
        lengths = (8, 16)
        fig6a_length = 16
    fig5 = run_fig5(lengths=lengths)
    fig6a = run_fig6a(length=fig6a_length)
    fig6b = run_fig6b(lengths=lengths)
    speedups = {row.function: row.speedup for row in fig6a.rows}
    power = run_power_table(speedups=speedups)
    return FullReport(fig5=fig5, fig6a=fig6a, fig6b=fig6b, power=power)
