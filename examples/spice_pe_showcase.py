"""Element-level PE showcase: Fig. 2 circuits in the MNA engine.

Builds one DTW PE (Eq. (8) minimum module), one live LCS PE
(comparator-driven transmission gates) and one live EdD PE, solves
their operating points against the software recurrences, runs a
transient on the DTW PE with Table 1 parasitics, and exports one PE as
a standard SPICE deck for independent re-simulation in ngspice.

Run:  python examples/spice_pe_showcase.py
"""

from repro.spice import (
    Circuit,
    add_parasitics,
    dc_operating_point,
    netlist_to_spice,
    transient,
)
from repro.spice.pe_circuits import (
    build_dtw_pe,
    build_edit_pe_live,
    build_lcs_pe_live,
)


def dtw_pe_demo() -> None:
    p, q = 0.06, 0.02
    neighbours = (0.05, 0.09, 0.03)
    c = Circuit("dtw_pe")
    for node, v in zip(("p", "q", "d0", "d1", "d2"),
                       (p, q) + neighbours):
        c.add_vsource(f"v_{node}", node, "0", v)
    build_dtw_pe(c, "pe", "p", "q", ["d0", "d1", "d2"], "out")
    sol = dc_operating_point(c)
    expected = abs(p - q) + min(neighbours)
    print(
        f"DTW PE: circuit {sol['out']*1e3:.2f} mV vs recurrence "
        f"{expected*1e3:.2f} mV ({c.summary()})"
    )

    add_parasitics(c)
    result = transient(c, t_stop=30e-9, dt=50e-12, record=["out"])
    print(
        f"  settles to 0.1% in "
        f"{result.settling_time('out')*1e9:.2f} ns with Table 1 "
        f"parasitics"
    )


def lcs_pe_demo() -> None:
    c = Circuit("lcs_pe")
    for node, v in {"p": 0.10, "q": 0.105, "ld": 0.04, "ll": 0.07,
                    "lu": 0.02}.items():
        c.add_vsource(f"v_{node}", node, "0", v)
    build_lcs_pe_live(
        c, "pe", "p", "q", "ld", "ll", "lu", "out",
        v_threshold=0.02, v_step=0.01,
    )
    sol = dc_operating_point(c)
    print(
        f"LCS PE (match case): circuit {sol['out']*1e3:.2f} mV vs "
        f"L_diag + Vstep = 50.00 mV"
    )


def edd_pe_demo() -> None:
    c = Circuit("edd_pe")
    for node, v in {"p": 0.10, "q": 0.16, "ed": 0.03, "el": 0.05,
                    "eu": 0.04}.items():
        c.add_vsource(f"v_{node}", node, "0", v)
    build_edit_pe_live(
        c, "pe", "p", "q", "ed", "el", "eu", "out",
        v_threshold=0.02, v_step=0.01,
    )
    sol = dc_operating_point(c)
    print(
        f"EdD PE (mismatch case): circuit {sol['out']*1e3:.2f} mV vs "
        f"min(0.06, 0.05, 0.04) = 40.00 mV"
    )
    deck = netlist_to_spice(c, title="EdD PE, Fig. 2(c)")
    print(
        f"  exported SPICE deck: {len(deck.splitlines())} lines "
        f"(first: {deck.splitlines()[1]!r})"
    )


def main() -> None:
    dtw_pe_demo()
    lcs_pe_demo()
    edd_pe_demo()


if __name__ == "__main__":
    main()
