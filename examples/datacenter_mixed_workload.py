"""The paper's headline scenario: one data-center accelerator serving
applications with *different* distance functions.

Section 1: "a Google data center needs to deal with healthcare and
smart city applications.  The former adopts HamD for iris
authentication and LCS for ECG similarity, while the latter uses DTW
for vehicle classification.  None of these existing works can work
well in this scenario as they are optimized for a single distance
function only."

This example streams a mixed job queue (HamD + LCS + DTW jobs) through
the control module, comparing FIFO execution against
configuration-grouped scheduling, and prints the reconfiguration
accounting that justifies the reconfigurable design.

Run:  python examples/datacenter_mixed_workload.py
"""

import numpy as np

from repro.accelerator import (
    AcceleratorController,
    DistanceAccelerator,
    Job,
)


def make_queue(rng: np.random.Generator, total: int = 30):
    """An interleaved arrival stream, as a shared data center sees it."""
    jobs = []
    for k in range(total):
        kind = k % 3
        if kind == 0:  # iris authentication (HamD on binary codes)
            p = rng.integers(0, 2, 32).astype(float)
            q = rng.integers(0, 2, 32).astype(float)
            jobs.append(Job("hamming", p, q, threshold=0.5))
        elif kind == 1:  # ECG similarity (LCS)
            p = rng.normal(size=20)
            q = p + rng.normal(0, 0.3, 20)
            jobs.append(Job("lcs", p, q, threshold=0.6))
        else:  # vehicle classification (DTW)
            p = rng.normal(size=16)
            q = rng.normal(size=16)
            jobs.append(Job("dtw", p, q))
    return jobs


def main() -> None:
    rng = np.random.default_rng(2017)
    chip = DistanceAccelerator()

    for policy, reorder in (("FIFO", False), ("grouped", True)):
        controller = AcceleratorController(chip)
        report = controller.run(make_queue(rng), reorder=reorder)
        print(
            f"{policy:>8}: {report.reconfigurations:>3} "
            f"reconfigurations, "
            f"reconfig {report.reconfiguration_time_s * 1e6:8.2f} us + "
            f"compute {report.compute_time_s * 1e6:8.2f} us = "
            f"{report.total_time_s * 1e6:8.2f} us"
        )

    # The same queue on three single-function accelerators would need
    # three chips; the reconfigurable array needs one — the paper's
    # chip-area argument, in scheduling terms.
    controller = AcceleratorController(chip)
    report = controller.run(make_queue(rng), reorder=True)
    per_function = {}
    for job, result in zip(make_queue(rng), report.results):
        per_function.setdefault(result.function, []).append(result.value)
    print("\nper-function job counts on the single shared array:")
    for function, values in sorted(per_function.items()):
        print(f"  {function:<9} {len(values):>3} jobs")


if __name__ == "__main__":
    main()
