"""Deployment study: serving a mixed mining stream three ways.

Generates the paper's Section 1 workload (iris HamD + ECG LCS +
vehicle DTW + generic traffic) as a Poisson stream and compares three
data-center deployments end to end: the reconfigurable accelerator,
a CPU, and a farm of single-function accelerators — including the
failure mode the paper highlights (a partial farm simply cannot serve
functions it has no device for).

Run:  python examples/datacenter_deployment.py
"""

from repro.datacenter import (
    SingleFunctionFarm,
    WorkloadSpec,
    comparison_table,
    generate_workload,
    mix_of,
    simulate_accelerator,
    simulate_cpu,
    simulate_farm,
)


def main() -> None:
    spec = WorkloadSpec(
        arrival_rate_hz=3.0e5, duration_s=3.0e-3, seed=11
    )
    queries = generate_workload(spec)
    print(
        f"{len(queries)} queries over {spec.duration_s * 1e3:.0f} ms "
        f"({spec.arrival_rate_hz:.0e}/s); mix:"
    )
    for function, fraction in mix_of(queries).items():
        print(f"  {function:<10} {fraction:>5.1%}")

    results = [
        simulate_accelerator(queries),
        simulate_cpu(queries),
        simulate_farm(queries),
    ]
    print()
    print(comparison_table(results))

    partial = simulate_farm(
        queries, SingleFunctionFarm(functions=["dtw", "hamming"])
    )
    print(
        f"\npartial farm (DTW+HamD devices only): served "
        f"{partial.served}, dropped {partial.dropped} "
        f"({partial.dropped / len(queries):.0%} of traffic has no "
        f"device) — the single-function problem the paper opens with"
    )

    acc, cpu, farm = results
    print(
        f"\nenergy per query: accelerator "
        f"{acc.energy_per_query_j * 1e6:.3f} uJ vs CPU "
        f"{cpu.energy_per_query_j * 1e6:.1f} uJ "
        f"({cpu.energy_per_query_j / acc.energy_per_query_j:.0f}x) vs "
        f"farm {farm.energy_per_query_j * 1e6:.1f} uJ "
        f"({farm.energy_per_query_j / acc.energy_per_query_j:.0f}x)"
    )


if __name__ == "__main__":
    main()
