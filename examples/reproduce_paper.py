"""Regenerate every table and figure of the paper's Section 4.

Runs the full experiment harness (Fig. 5, Fig. 6(a), Fig. 6(b), the
Section 4.3 power analysis) and prints the paper-style tables.  Use
``--quick`` for a reduced sweep (seconds instead of minutes).

Run:  python examples/reproduce_paper.py [--quick]
"""

import sys

from repro.eval import full_report


def main() -> None:
    quick = "--quick" in sys.argv[1:]
    if quick:
        print("running reduced sweeps (--quick)\n")
    report = full_report(quick=quick)
    print(report.render())


if __name__ == "__main__":
    main()
