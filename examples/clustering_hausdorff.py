"""Clustering UCR-style series with k-medoids over accelerator
distances (Hausdorff and DTW).

Clustering is the second of the paper's three mining tasks.  This
example clusters the synthetic Symbols dataset with k-medoids using
(a) software DTW, (b) accelerator DTW, and (c) accelerator Hausdorff —
showing the accelerator as a drop-in distance oracle and how distance
choice changes cluster quality.

Run:  python examples/clustering_hausdorff.py
"""

import numpy as np

from repro.accelerator import DistanceAccelerator
from repro.datasets import formalise, load_dataset
from repro.mining import cluster_series, rand_index

LENGTH = 20
PER_CLASS = 4
N_CLASSES = 3


def main() -> None:
    data = load_dataset("Symbols")
    series, truth = [], []
    for label in range(N_CLASSES):
        pool = data.instances_of(label, split="train")
        for instance in pool[:PER_CLASS]:
            series.append(formalise(instance, LENGTH))
            truth.append(label)
    truth = np.array(truth)

    chip = DistanceAccelerator()
    runs = {
        "software DTW": dict(distance="dtw", band=0.1),
        "accelerator DTW": dict(
            distance=chip.distance("dtw", band=0.1)
        ),
        "accelerator HauD": dict(distance=chip.distance("hausdorff")),
    }

    print(
        f"clustering {len(series)} series "
        f"({N_CLASSES} classes x {PER_CLASS}) with k-medoids\n"
    )
    print(f"{'backend':<18} {'rand index':>11} {'cost':>9} "
          f"{'iters':>6}")
    for name, kwargs in runs.items():
        distance = kwargs.pop("distance")
        result = cluster_series(
            series, N_CLASSES, distance=distance, seed=1, **kwargs
        )
        print(
            f"{name:<18} {rand_index(result.labels, truth):>11.2f} "
            f"{result.cost:>9.2f} {result.iterations:>6}"
        )


if __name__ == "__main__":
    main()
