"""Smart-city workload: vehicle classification with DTW 1-NN.

The paper's introduction motivates the accelerator with a Google-style
data center serving mixed applications; the smart-city side "uses DTW
for vehicle classification" (Weng et al. [31]).  This example builds
axle-signature-like time series for three vehicle classes, classifies
them with 1-NN DTW in software and on the accelerator, and compares
accuracy and (modelled) latency.

Run:  python examples/vehicle_classification_dtw.py
"""

import time

import numpy as np

from repro.accelerator import DistanceAccelerator
from repro.datasets import z_normalise
from repro.mining import KnnClassifier

CLASSES = ("car", "van", "truck")
LENGTH = 24


def vehicle_signature(kind: str, rng: np.random.Generator) -> np.ndarray:
    """A magnetic/axle-sensor-like signature: one bump per axle."""
    t = np.linspace(0.0, 1.0, LENGTH)
    axles = {"car": (0.3, 0.7), "van": (0.25, 0.55, 0.8),
             "truck": (0.2, 0.4, 0.6, 0.85)}[kind]
    speed = rng.uniform(0.9, 1.1)  # time warp between instances
    signal = np.zeros(LENGTH)
    for position in axles:
        signal += np.exp(-((t - position * speed) ** 2) / 0.004)
    return z_normalise(signal + rng.normal(0.0, 0.08, LENGTH))


def make_split(rng: np.random.Generator, per_class: int):
    x, y = [], []
    for label, kind in enumerate(CLASSES):
        for _ in range(per_class):
            x.append(vehicle_signature(kind, rng))
            y.append(label)
    return x, np.array(y)


def main() -> None:
    rng = np.random.default_rng(7)
    train_x, train_y = make_split(rng, per_class=6)
    test_x, test_y = make_split(rng, per_class=4)

    band = 0.1  # Sakoe-Chiba, tolerate the speed variation

    software = KnnClassifier(
        distance="dtw", distance_kwargs={"band": band}
    ).fit(train_x, train_y)
    start = time.perf_counter()
    sw_acc = software.score(test_x, test_y)
    sw_wall = time.perf_counter() - start

    chip = DistanceAccelerator()
    hardware = KnnClassifier(
        distance=chip.distance("dtw", band=band)
    ).fit(train_x, train_y)
    hw_acc = hardware.score(test_x, test_y)

    # Modelled on-chip latency for one query (all train comparisons).
    probe = chip.compute(
        "dtw", test_x[0], train_x[0], band=band, measure_time=True
    )
    per_compare = probe.total_time_s
    print(f"classes: {CLASSES}, train {len(train_x)}, test {len(test_x)}")
    print(f"1-NN DTW accuracy  software:    {sw_acc:.0%}")
    print(f"1-NN DTW accuracy  accelerator: {hw_acc:.0%}")
    print(
        f"modelled accelerator latency per comparison: "
        f"{per_compare * 1e9:.0f} ns "
        f"({len(train_x) * per_compare * 1e6:.2f} us per query)"
    )
    print(f"software wall-clock for the test set: {sw_wall * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
