"""Healthcare/security workload: iris authentication with Hamming
distance (Vandal & Savvides [29], the paper's healthcare example).

Iris codes are binary templates compared by Hamming distance; a probe
is accepted when the normalised distance falls below a decision
threshold.  This example generates binary iris-code-like vectors,
runs the matcher on the accelerator's row structure (with early
determination picking the best-matching enrolled identity), and
reports the accept/reject quality.

Run:  python examples/iris_authentication_hamming.py
"""

import numpy as np

from repro.accelerator import DistanceAccelerator, early_rank
from repro.distances import hamming

CODE_LENGTH = 64
DECISION_FRACTION = 0.25  # accept below 25% differing positions


def iris_code(rng: np.random.Generator) -> np.ndarray:
    return rng.integers(0, 2, CODE_LENGTH).astype(float)


def noisy_probe(code: np.ndarray, flip_rate: float,
                rng: np.random.Generator) -> np.ndarray:
    flips = rng.random(CODE_LENGTH) < flip_rate
    return np.where(flips, 1.0 - code, code)


def main() -> None:
    rng = np.random.default_rng(11)
    enrolled = {f"user{k}": iris_code(rng) for k in range(5)}
    chip = DistanceAccelerator()
    matcher = chip.distance("hamming", threshold=0.5)

    accepts = rejects = errors = 0
    trials = 40
    for trial in range(trials):
        genuine = trial % 2 == 0
        name = f"user{trial % 5}"
        if genuine:
            probe = noisy_probe(enrolled[name], 0.08, rng)
        else:
            probe = iris_code(rng)
        distance = matcher(probe, enrolled[name])
        accepted = distance / CODE_LENGTH < DECISION_FRACTION
        if accepted == genuine:
            accepts += genuine
            rejects += not genuine
        else:
            errors += 1

    print(f"{trials} authentication attempts against 5 enrolled users")
    print(f"genuine accepted: {accepts}, impostors rejected: {rejects},"
          f" decision errors: {errors}")

    # Identification mode: early determination ranks all enrolled
    # templates in one analog settle and reads the winner at t/10.
    target = "user3"
    probe = noisy_probe(enrolled[target], 0.08, rng)
    names = list(enrolled)
    decision = early_rank(
        probe,
        [enrolled[n] for n in names],
        function="hamming",
        threshold=0.5,
    )
    winner = names[decision.early_ranking[0]]
    print(
        f"identification via early determination: probe of {target} "
        f"matched {winner} at t = t_conv/10 "
        f"(speedup {decision.speedup:.1f}x, "
        f"consistent with convergence: {decision.consistent})"
    )

    # Sanity: accelerator agrees with the software Hamming distance.
    sw = hamming(probe, enrolled[target], threshold=0.5)
    hw = matcher(probe, enrolled[target])
    print(f"software HamD {sw:.0f} vs accelerator {hw:.0f}")


if __name__ == "__main__":
    main()
