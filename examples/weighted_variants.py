"""Weighted distance variants on the accelerator.

Section 3.2 of the paper gives a memristor-ratio programming rule per
function so the same PE array computes *weighted* DTW/LCS/EdD/HauD/
HamD/MD.  This example exercises the three weight families the cited
applications use — WDTW's logistic path weights [12], position
emphasis for weighted MD [23], recency weights — and shows software vs
accelerator agreement plus the effect of the weights on a
classification decision.

Run:  python examples/weighted_variants.py
"""

import numpy as np

from repro.accelerator import DistanceAccelerator
from repro.distances import (
    dtw,
    manhattan,
    recency_weights,
    wdtw_weights,
)
from repro.datasets import z_normalise

LENGTH = 20


def main() -> None:
    rng = np.random.default_rng(9)
    # The 8-bit ADC's LSB is 0.1 distance units; WDTW values here sit
    # below it, so use the paper's Fig. 5 setting (computation only)
    # to show the analog agreement rather than converter flooring.
    chip = DistanceAccelerator(quantise_io=False)

    # --- WDTW: penalise large time shifts -----------------------------
    # Logistic WDTW weights grow with the alignment's index shift
    # |i - j|, so the *relative* cost of warping further off the
    # diagonal rises; compare how fast WDTW grows with shift vs DTW.
    base = np.sin(np.linspace(0, 2 * np.pi, LENGTH))
    w = wdtw_weights(LENGTH, g=0.15)
    print("WDTW (logistic weights, g=0.15): cost growth with shift")
    print(f"  {'shift':>6} {'DTW':>8} {'WDTW sw':>9} {'WDTW hw':>9}")
    reference = None
    for shift in (1, 3, 6):
        shifted = np.roll(base, shift) + rng.normal(0, 0.02, LENGTH)
        plain = dtw(base, shifted)
        sw_weighted = dtw(base, shifted, weights=w)
        hw_weighted = chip.compute(
            "dtw", base, shifted, weights=w
        ).value
        print(
            f"  {shift:>6} {plain:>8.3f} {sw_weighted:>9.3f} "
            f"{hw_weighted:>9.3f}"
        )
        if reference is not None:
            assert sw_weighted >= reference  # shift penalty grows
        reference = sw_weighted

    # --- Weighted MD: emphasis on the recent samples -------------------
    p = z_normalise(rng.normal(size=LENGTH))
    q_head = p.copy()
    q_head[:3] += 1.0  # early disturbance
    q_tail = p.copy()
    q_tail[-3:] += 1.0  # recent disturbance
    w_recent = recency_weights(LENGTH, decay=0.7)
    print("\nweighted MD (recency weights, decay=0.7):")
    for label, q in (("early disturbance", q_head),
                     ("recent disturbance", q_tail)):
        sw_v = manhattan(p, q, weights=w_recent)
        hw_v = chip.compute(
            "manhattan", p, q, weights=w_recent
        ).value
        print(f"  {label:<19} sw={sw_v:.4f} hw={hw_v:.4f}")
    print("  (the same-magnitude recent disturbance scores higher)")

    # --- Hardware view: the ratio rule behind a weight -----------------
    from repro.memristor import ratio_pair

    weight = 0.8
    m1, m2 = ratio_pair((2 - weight) / weight)
    print(
        f"\nSection 3.2.1 rule for w={weight}: M1/M2=(2-w)/w -> "
        f"M1={m1.resistance/1e3:.1f}k, M2={m2.resistance/1e3:.1f}k "
        f"(ratio {m1.resistance / m2.resistance:.3f})"
    )


if __name__ == "__main__":
    main()
