"""Healthcare workload: ECG similarity with LCS (Han et al. [10], the
paper's healthcare example).

Generates ECG-like beats (P wave, QRS complex, T wave) with morphology
variants, scores beat similarity with the thresholded LCS of Eq. (3)
in software and on the accelerator, and uses it to flag abnormal beats
against a normal template.

Run:  python examples/ecg_similarity_lcs.py
"""

import numpy as np

from repro.accelerator import DistanceAccelerator
from repro.datasets import z_normalise
from repro.distances import lcs

LENGTH = 32
THRESHOLD = 0.6  # match tolerance in z-normalised units


def ecg_beat(kind: str, rng: np.random.Generator) -> np.ndarray:
    """A stylised single heartbeat."""
    t = np.linspace(0.0, 1.0, LENGTH)

    def bump(centre, width, height):
        return height * np.exp(-((t - centre) ** 2) / width)

    beat = (
        bump(0.2, 0.002, 0.25)      # P wave
        + bump(0.42, 0.0005, 1.0)   # R spike
        - bump(0.38, 0.0003, 0.3)   # Q dip
        - bump(0.46, 0.0004, 0.35)  # S dip
        + bump(0.7, 0.004, 0.4)     # T wave
    )
    if kind == "pvc":  # premature ventricular contraction: wide QRS
        beat = bump(0.42, 0.01, 1.3) - bump(0.6, 0.006, 0.6)
    elif kind == "flat_t":  # ischaemia-like flattened T wave
        beat -= bump(0.7, 0.004, 0.35)
    return z_normalise(beat + rng.normal(0.0, 0.05, LENGTH))


def main() -> None:
    rng = np.random.default_rng(3)
    template = ecg_beat("normal", rng)
    chip = DistanceAccelerator()
    score = chip.distance("lcs", threshold=THRESHOLD)

    print(f"{'beat':<8} {'LCS sw':>7} {'LCS hw':>7} {'similar?':>9}")
    accept = 0.85 * LENGTH  # similarity floor for "normal"
    for kind in ("normal", "normal", "pvc", "flat_t"):
        beat = ecg_beat(kind, rng)
        sw = lcs(template, beat, threshold=THRESHOLD)
        hw = score(template, beat)
        print(
            f"{kind:<8} {sw:>7.1f} {hw:>7.1f} "
            f"{'yes' if hw >= accept else 'NO':>9}"
        )

    # LCS handles unequal lengths: compare a truncated recording.
    short = ecg_beat("normal", rng)[: LENGTH - 8]
    sw = lcs(template, short, threshold=THRESHOLD)
    hw = score(template, short)
    print(
        f"\ntruncated beat ({LENGTH - 8} samples vs {LENGTH}): "
        f"LCS software {sw:.1f}, accelerator {hw:.1f}"
    )


if __name__ == "__main__":
    main()
