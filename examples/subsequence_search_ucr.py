"""Subsequence similarity search — the paper's >99% motivation.

Rakthanmanon et al. [24]: in subsequence search under DTW, distance
computation takes more than 99% of the runtime.  This example runs a
UCR-suite-style search (z-normalised windows, LB_Kim/LB_Keogh cascade,
Sakoe-Chiba band) over a long synthetic stream, profiles how much time
the distance function takes, and shows what an accelerator with ~ns
latency per distance would do to the wall clock.

Run:  python examples/subsequence_search_ucr.py
"""

import time

import numpy as np

from repro.accelerator import DistanceAccelerator
from repro.distances import dtw
from repro.mining import subsequence_search

STREAM = 1500
QUERY = 32
BAND = 0.08


def main() -> None:
    rng = np.random.default_rng(5)
    stream = np.cumsum(rng.normal(0.0, 0.3, STREAM))  # random walk
    query = np.sin(np.linspace(0, 3 * np.pi, QUERY)) * 2.0
    planted_at = 941
    stream[planted_at : planted_at + QUERY] = (
        query + rng.normal(0, 0.05, QUERY)
    )

    # Profile the software search: time inside dtw vs total.
    in_distance = [0.0]

    def timed_dtw(p, q, band=None):
        start = time.perf_counter()
        try:
            return dtw(p, q, band=band)
        finally:
            in_distance[0] += time.perf_counter() - start

    start = time.perf_counter()
    result = subsequence_search(
        stream, query, band=BAND, use_lower_bounds=False,
        dtw_fn=timed_dtw,
    )
    brute_total = time.perf_counter() - start
    print(
        f"brute-force search: best window @{result.best_index} "
        f"(planted @{planted_at}), {result.dtw_calls} DTW calls"
    )
    print(
        f"  time in distance function: {in_distance[0] / brute_total:.1%}"
        f" of {brute_total * 1e3:.0f} ms  <- the paper's bottleneck"
    )

    # Lower-bound cascade (software state of the art the paper cites).
    in_distance[0] = 0.0
    start = time.perf_counter()
    pruned = subsequence_search(
        stream, query, band=BAND, dtw_fn=timed_dtw
    )
    pruned_total = time.perf_counter() - start
    print(
        f"with LB_Kim/LB_Keogh: {pruned.dtw_calls} DTW calls "
        f"({pruned.pruning_rate:.0%} pruned), "
        f"{pruned_total * 1e3:.0f} ms"
    )
    assert pruned.best_index == result.best_index

    # Accelerator projection: each surviving DTW costs analog settling
    # + conversion instead of a software DP.
    chip = DistanceAccelerator()
    probe = chip.compute(
        "dtw",
        stream[: QUERY],
        query,
        band=BAND,
        measure_time=True,
    )
    accelerated = pruned.dtw_calls * probe.total_time_s
    print(
        f"accelerator projection: {probe.total_time_s * 1e9:.0f} ns per"
        f" distance -> {accelerated * 1e6:.1f} us for the surviving "
        f"calls (vs {in_distance[0] * 1e3:.0f} ms in software)"
    )


if __name__ == "__main__":
    main()
