"""Quickstart: compute all six distances in software and on the
memristor accelerator.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import distances as sw
from repro.accelerator import DistanceAccelerator


def main() -> None:
    rng = np.random.default_rng(42)
    p = rng.normal(size=16)
    q = rng.normal(size=16)

    # One accelerator instance serves every function — that is the
    # paper's point: the control module reconfigures the PE array.
    accelerator = DistanceAccelerator()

    print(f"{'function':<10} {'software':>10} {'accelerator':>12} "
          f"{'rel. error':>11}")
    for function in (
        "dtw", "lcs", "edit", "hausdorff", "hamming", "manhattan",
    ):
        kwargs = (
            {"threshold": 0.5}
            if function in ("lcs", "edit", "hamming")
            else {}
        )
        reference = getattr(sw, function)(p, q, **kwargs)
        result = accelerator.compute(function, p, q, **kwargs)
        error = abs(result.value - reference) / max(abs(reference), 1.0)
        print(
            f"{function:<10} {reference:>10.4f} {result.value:>12.4f} "
            f"{error:>10.2%}"
        )

    # Timing: ask the simulator for the analog convergence time.
    timed = accelerator.compute("dtw", p, q, measure_time=True)
    print(
        f"\nDTW on the accelerator: converged in "
        f"{timed.convergence_time_s * 1e9:.1f} ns analog settling + "
        f"{timed.conversion_time_s * 1e9:.1f} ns DAC/ADC"
    )

    # Weighted variants: program memristor ratios instead of HRS/LRS.
    weights = np.linspace(0.5, 1.5, 16)
    weighted = accelerator.compute("manhattan", p, q, weights=weights)
    print(
        f"weighted MD: software "
        f"{sw.manhattan(p, q, weights=weights):.4f}, accelerator "
        f"{weighted.value:.4f}"
    )


if __name__ == "__main__":
    main()
