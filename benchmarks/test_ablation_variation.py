"""A2 — Ablation: process variation and resistance tuning (Section 3.3).

Two parts:

1. Device level: tolerance-controlled matched pairs vs unmatched
   devices under +/-25% global variation, then the modulate/verify
   tuning loop pulling the residual to sub-percent — the paper's
   two-step mitigation, measured.
2. Accelerator level: DTW accuracy as a function of the residual
   memristor-ratio tolerance, showing why <1% matters.
"""

import numpy as np
import pytest

from repro.accelerator import DistanceAccelerator
from repro.analog import NonidealityModel
from repro.distances import dtw
from repro.memristor import (
    Memristor,
    TuningConfig,
    fabricate_ratio_pair,
    tune_ratio,
)

from conftest import print_section


def test_variation_and_tuning(benchmark, rng):
    # --- device level -----------------------------------------------------
    def fabricate_and_tune():
        local_rng = np.random.default_rng(3)
        m1, m2, achieved = fabricate_ratio_pair(
            1.0, rng=local_rng, matched=True
        )
        result = tune_ratio(
            m1,
            m2,
            1.0,
            config=TuningConfig(tolerance=2e-3, max_iterations=100),
            rng=local_rng,
        )
        return abs(achieved - 1.0), result.relative_error

    pre_error, post_error = benchmark(fabricate_and_tune)
    assert post_error < 5e-3

    matched_errors, unmatched_errors, tuned_errors = [], [], []
    sample_rng = np.random.default_rng(11)
    for _ in range(40):
        _, _, r_matched = fabricate_ratio_pair(
            1.0, rng=sample_rng, matched=True
        )
        matched_errors.append(abs(r_matched - 1.0))
        m1, m2, r_unmatched = fabricate_ratio_pair(
            1.0, rng=sample_rng, matched=False
        )
        unmatched_errors.append(abs(r_unmatched - 1.0))
        result = tune_ratio(
            m1,
            m2,
            1.0,
            config=TuningConfig(tolerance=2e-3, max_iterations=100),
            rng=sample_rng,
        )
        tuned_errors.append(result.relative_error)

    assert np.mean(matched_errors) < np.mean(unmatched_errors)
    assert np.mean(tuned_errors) < np.mean(unmatched_errors)

    # --- accelerator level -------------------------------------------------
    p, q = (
        np.random.default_rng(5).normal(size=14),
        np.random.default_rng(6).normal(size=14),
    )
    reference = dtw(p, q)
    rows = [
        f"{'ratio tolerance':>16} {'DTW rel. error':>15}",
    ]
    accuracy = {}
    for tolerance in (0.0, 0.002, 0.01, 0.05, 0.25):
        chip = DistanceAccelerator(
            nonideality=NonidealityModel(
                weight_tolerance=tolerance, seed=7
            ),
            quantise_io=False,
        )
        value = chip.compute("dtw", p, q).value
        error = abs(value - reference) / abs(reference)
        accuracy[tolerance] = error
        rows.append(f"{tolerance:>16.3f} {error:>14.2%}")

    # Untuned (+/-25%) is catastrophically worse than tolerance-
    # controlled (1%) and post-tuning (0.2%) chips.
    assert accuracy[0.25] > 4 * accuracy[0.01]
    assert accuracy[0.002] <= accuracy[0.05]

    device_rows = (
        f"matched-pair as-fabricated ratio error: "
        f"{np.mean(matched_errors):.2%}\n"
        f"unmatched as-fabricated ratio error:    "
        f"{np.mean(unmatched_errors):.2%}\n"
        f"after modulate/verify tuning:           "
        f"{np.mean(tuned_errors):.3%}"
    )
    print_section(
        "Ablation A2 — process variation and tuning",
        device_rows + "\n\n" + "\n".join(rows),
    )
