"""T1 — Table 1: SPICE parameters for the distance accelerator setup.

Verifies the simulators are configured exactly to Table 1 and prints
the derived electrical quantities (op-amp pole, stage time constants,
parasitic budget); benchmarks the settling of one Table 1-configured
subtractor stage in the SPICE engine.
"""

import pytest

from repro.accelerator import PAPER_PARAMS
from repro.analog import DEFAULT_TIMING
from repro.spice import (
    Circuit,
    PAPER_OPAMP,
    PARASITIC_CAPACITANCE,
    add_parasitics,
    build_subtractor,
    transient,
)

from conftest import print_section


def _table1_rows() -> str:
    lines = [
        f"{'parameter':<42} {'value':>16}",
        f"{'Open loop gain of op-amp':<42} {PAPER_OPAMP.open_loop_gain:>16.0e}",
        f"{'Gain-bandwidth product of op-amp (GHz)':<42} {PAPER_OPAMP.gbw_hz/1e9:>16.0f}",
        f"{'Vcc (V)':<42} {PAPER_PARAMS.vcc:>16.1f}",
        f"{'Voltage resolution (mV for 1)':<42} {PAPER_PARAMS.voltage_resolution*1e3:>16.0f}",
        f"{'Threshold voltage of diodes (V)':<42} {0.0:>16.1f}",
        f"{'Parasitic capacitance per net (fF)':<42} {PARASITIC_CAPACITANCE*1e15:>16.0f}",
        "-" * 60,
        f"{'derived: op-amp dominant pole (MHz)':<42} {PAPER_OPAMP.pole_frequency_hz/1e6:>16.1f}",
        f"{'derived: amp-stage tau (ns)':<42} {DEFAULT_TIMING.opamp_tau(2.0)*1e9:>16.2f}",
    ]
    return "\n".join(lines)


def test_table1_configuration_and_stage_settling(benchmark):
    assert PAPER_OPAMP.open_loop_gain == 1e4
    assert PAPER_OPAMP.gbw_hz == 50e9
    assert PAPER_PARAMS.vcc == 1.0
    assert PAPER_PARAMS.voltage_resolution == pytest.approx(20e-3)
    assert PARASITIC_CAPACITANCE == pytest.approx(20e-15)

    def settle_one_stage():
        circuit = Circuit()
        circuit.add_vsource(
            "vp", "p", "0", lambda t: 0.3 if t > 0 else 0.0
        )
        circuit.add_vsource("vq", "q", "0", 0.1)
        build_subtractor(circuit, "s", "p", "q", "out")
        add_parasitics(circuit)
        result = transient(
            circuit, t_stop=15e-9, dt=50e-12, record=["out"]
        )
        return result.settling_time("out", 1e-3)

    settle = benchmark(settle_one_stage)
    assert 0.5e-9 < settle < 10e-9  # the paper's ns-scale narrative
    print_section(
        "Table 1 — SPICE parameters (configured values + derived)",
        _table1_rows()
        + f"\nmeasured: one subtractor stage settles in "
        f"{settle*1e9:.2f} ns (0.1% criterion)",
    )
