"""F6b — Fig. 6(b): runtime and speedup vs a CPU implementation.

Regenerates the length sweep against the i5-3470 cycle model (and a
wall-clock measurement of this machine's software implementation for
reference), checking the paper's claims: the speedup grows with
sequence length, and is smaller for the O(n) HamD/MD than for the
O(n^2) functions.
"""

import numpy as np
import pytest

from repro.baselines import measure_cpu_time
from repro.eval import run_fig6b

from conftest import print_section

LENGTHS = (10, 20, 30, 40)


@pytest.fixture(scope="module")
def fig6b_result(accelerator):
    return run_fig6b(lengths=LENGTHS, accelerator=accelerator)


def test_fig6b_speedup_shape(benchmark, fig6b_result, rng):
    # Benchmark the actual software DTW this machine runs, for the
    # honest local comparison row.
    p, q = rng.normal(size=40), rng.normal(size=40)
    measurement = benchmark(
        lambda: measure_cpu_time("dtw", p, q, repeats=1)
    )

    result = fig6b_result
    # Speedup grows with length for every O(n^2) function.
    for function in ("dtw", "lcs", "edit"):
        _, _, speedups = result.series(function)
        assert speedups[-1] > speedups[0], function

    # O(n) functions have smaller speedups than O(n^2) at n = 40.
    by_key = {
        (point.function, point.length): point
        for point in result.points
    }
    assert (
        by_key[("manhattan", 40)].speedup_vs_model
        < by_key[("dtw", 40)].speedup_vs_model
    )
    assert (
        by_key[("hamming", 40)].speedup_vs_model
        < by_key[("edit", 40)].speedup_vs_model
    )

    # Every function is faster than the modelled CPU at n = 40.
    for function in (
        "dtw",
        "lcs",
        "edit",
        "hausdorff",
        "hamming",
        "manhattan",
    ):
        assert by_key[(function, 40)].speedup_vs_model > 1.0

    wall_note = (
        f"\nlocal wall-clock reference: software DTW n=40 takes "
        f"{measurement.measured_s*1e6:.1f} us on this machine "
        f"(i5-3470 model: {measurement.modelled_s*1e6:.2f} us)"
    )
    print_section(
        "Fig. 6(b) — runtime and speedup vs CPU (i5-3470 model)",
        result.table() + wall_note,
    )
