"""F5 — Fig. 5: convergence time and relative error vs sequence length.

Regenerates the six panels' series (lengths 10-40, the paper's sweep)
and checks the paper's qualitative findings:

* convergence time ~linear in length for all functions except HauD;
* HauD convergence time roughly constant beyond length ~10;
* DTW and EdD have the largest relative errors;
* HamD/MD relative errors grow with length.
"""

import numpy as np
import pytest

from repro.eval import (
    growth_ratio,
    linearity_score,
    run_fig5,
)

from conftest import print_section

LENGTHS = (10, 20, 30, 40)


@pytest.fixture(scope="module")
def fig5_result(accelerator):
    return run_fig5(
        lengths=LENGTHS,
        datasets=("Symbols",),
        accelerator=accelerator,
        measure_time=True,
    )


def test_fig5_regenerate_and_check_shape(benchmark, fig5_result, accelerator):
    result = fig5_result

    # Benchmark one representative measurement (DTW, n=20).
    from repro.datasets import load_dataset, sample_pairs

    p, q, _ = sample_pairs(load_dataset("Symbols"), 20, seed=1)[0]
    benchmark(
        lambda: accelerator.compute("dtw", p, q, measure_time=True)
    )

    # Linearity of convergence time for the five non-HauD functions.
    for function in ("dtw", "lcs", "edit", "hamming", "manhattan"):
        lengths, times, _ = result.series(function)
        assert linearity_score(lengths, times) > 0.95, function
        assert growth_ratio(times) > 1.8, function

    # HauD flat beyond ~10.
    _, haud_times, _ = result.series("hausdorff")
    assert growth_ratio(haud_times) < 1.6

    print_section(
        "Fig. 5 — convergence time & relative error vs length "
        "(dataset: Symbols)",
        result.table(),
    )


def test_fig5_error_ordering(benchmark, fig5_result):
    # Benchmark the software reference the errors are measured against.
    from repro.distances import dtw

    rng = np.random.default_rng(0)
    p, q = rng.normal(size=40), rng.normal(size=40)
    benchmark(lambda: dtw(p, q))

    # "the relative error of DTW and EdD is larger than others'"
    mean_err = {}
    for function in (
        "dtw",
        "lcs",
        "edit",
        "hausdorff",
        "hamming",
        "manhattan",
    ):
        _, _, errors = fig5_result.series(function)
        mean_err[function] = float(np.mean(errors))
    slowest_two = sorted(mean_err, key=mean_err.get)[-2:]
    assert "dtw" in slowest_two or "edit" in slowest_two

    # "each sub-module of these two algorithms is attached with a
    # fixed small absolute error [which] is added to the final result
    # linearly" — probe the pure accumulated bias with identical
    # sequences (true distance 0): it must grow with length.
    from repro.accelerator import DistanceAccelerator
    from repro.analog import NonidealityModel

    def mean_bias(n: int) -> float:
        values = []
        for seed in range(8):  # average over chip instances
            chip = DistanceAccelerator(
                nonideality=NonidealityModel(seed=seed),
                quantise_io=False,
            )
            zeros = np.zeros(n)
            values.append(
                abs(chip.compute("manhattan", zeros, zeros).value)
            )
        return float(np.mean(values))

    assert mean_bias(40) > mean_bias(10)
