"""Standalone engine benchmark harness.

Thin wrapper over ``repro.eval.bench.run_engine_bench`` for running
outside the CLI (CI calls ``repro bench --smoke``; this script is the
same measurement for local profiling sessions)::

    PYTHONPATH=src python benchmarks/bench_engine.py [--smoke]
        [--repeats N] [--seed S] [--out BENCH_engine.json]

Exits non-zero when the template-cached levelized path is not the
stock accelerator's default or the fast and seed engines disagree
bit-for-bit — the same gate the CLI applies.
"""

from __future__ import annotations

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
