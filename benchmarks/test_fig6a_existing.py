"""F6a — Fig. 6(a): per-element speedup vs existing works.

Measures the accelerator's per-element latency at length 40 for each
function (early determination applied to HamD/MD, as the paper does),
compares against the modelled prior accelerators, and checks the
paper's claims: a ~3.5x-376x speedup band with LCS and HamD among the
largest speedups.
"""

import pytest

from repro.eval import run_fig6a

from conftest import print_section


@pytest.fixture(scope="module")
def fig6a_result(accelerator):
    return run_fig6a(length=40, accelerator=accelerator)


def test_fig6a_speedups(benchmark, fig6a_result, accelerator):
    from repro.datasets import load_dataset, sample_pairs

    p, q, _ = sample_pairs(load_dataset("Symbols"), 40, seed=7)[0]
    benchmark(
        lambda: accelerator.compute(
            "manhattan", p, q, measure_time=True
        )
    )

    result = fig6a_result
    lo, hi = result.speedup_range
    # The paper's band: 3.5x-376x.  Our measured latencies move a
    # little run to run, so allow modest slack at both ends.
    assert 2.5 < lo < 6.0
    assert 250.0 < hi < 500.0

    by_name = {r.function: r for r in result.rows}
    # LCS and HamD called out as the fastest ("runtime of LCS and
    # HamD in our work is shorter than that of others").
    speedups = sorted(result.rows, key=lambda r: r.speedup)
    top_two = {speedups[-1].function, speedups[-2].function}
    assert top_two == {"lcs", "hamming"}
    # DTW against the FPGA prior is the floor.
    assert speedups[0].function == "dtw"
    # Early determination applied exactly to the row functions.
    assert by_name["hamming"].early_determination
    assert by_name["manhattan"].early_determination
    assert not by_name["dtw"].early_determination

    print_section(
        "Fig. 6(a) — per-element speedup vs existing works (n = 40)",
        result.table(),
    )
