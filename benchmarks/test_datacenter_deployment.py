"""A5 — Extension: data-center deployment comparison.

Quantifies the paper's Section 1 argument end to end: a mixed mining
stream (iris HamD, ECG LCS, vehicle DTW, generic traffic) served by
(a) the reconfigurable accelerator, (b) a CPU, (c) a farm of
single-function accelerators — latency, utilisation, energy per query,
and the drop rate of a partial farm.
"""

import pytest

from repro.datacenter import (
    SingleFunctionFarm,
    WorkloadSpec,
    comparison_table,
    generate_workload,
    simulate_accelerator,
    simulate_cpu,
    simulate_farm,
)

from conftest import print_section


def test_deployment_comparison(benchmark):
    spec = WorkloadSpec(
        arrival_rate_hz=3.0e5, duration_s=3.0e-3, seed=5
    )
    queries = generate_workload(spec)

    acc = benchmark(lambda: simulate_accelerator(queries))
    cpu = simulate_cpu(queries)
    farm = simulate_farm(queries)

    # The paper's claims, as deployment-level outcomes:
    # real-time: orders-of-magnitude lower latency than CPU serving.
    assert acc.mean_sojourn_s < cpu.mean_sojourn_s / 10
    # energy-efficient: >100x less energy per query than CPU or farm.
    assert acc.energy_per_query_j < cpu.energy_per_query_j / 100
    assert acc.energy_per_query_j < farm.energy_per_query_j / 100
    # nothing dropped: one array serves every function.
    assert acc.dropped == 0

    partial = simulate_farm(
        queries, SingleFunctionFarm(functions=["dtw", "hamming"])
    )
    assert partial.dropped > 0  # the single-function failure mode

    print_section(
        "Extension A5 — data-center deployment comparison",
        comparison_table([acc, cpu, farm])
        + f"\npartial farm (DTW+HamD only) drops "
        f"{partial.dropped}/{len(queries)} queries "
        f"({partial.dropped / len(queries):.0%})",
    )
