"""A1 — Ablation: early determination (Section 3.3(1), Fig. 3).

Measures, over many random nearest-neighbour trials, how often the
ranking read at the Early Point (one tenth of the convergence time)
matches the fully-converged ranking, as a function of how separated the
candidates are — reproducing Fig. 3's mechanism and quantifying its
limits (the part the paper asserts but does not measure).
"""

import numpy as np
import pytest

from repro.accelerator import early_rank

from conftest import print_section


def _trial(rng, separation, length=12, n_candidates=3):
    query = rng.normal(size=length)
    candidates = [
        query + rng.normal(0.0, 0.2 + separation * k, length)
        for k in range(n_candidates)
    ]
    order = rng.permutation(n_candidates)
    shuffled = [candidates[k] for k in order]
    decision = early_rank(query, shuffled)
    return decision


def test_early_determination_consistency(benchmark, rng):
    decision = benchmark(lambda: _trial(np.random.default_rng(1), 0.8))
    assert decision.speedup == pytest.approx(10.0, rel=0.25)

    rows = [
        f"{'separation':>11} {'winner consistency':>19} "
        f"{'mean speedup':>13}"
    ]
    results = {}
    for separation in (0.1, 0.4, 0.8, 1.6):
        trial_rng = np.random.default_rng(int(separation * 100))
        consistent = 0
        speedups = []
        trials = 25
        for _ in range(trials):
            decision = _trial(trial_rng, separation)
            consistent += decision.consistent
            speedups.append(decision.speedup)
        rate = consistent / trials
        results[separation] = rate
        rows.append(
            f"{separation:>11.1f} {rate:>18.0%} "
            f"{np.mean(speedups):>12.1f}x"
        )

    # Well-separated candidates: the Fig. 3 claim holds essentially
    # always; marginal ones may flip (the quantified limit).
    assert results[1.6] >= 0.95
    assert results[0.8] >= 0.9
    print_section(
        "Ablation A1 — early determination consistency vs separation",
        "\n".join(rows),
    )
