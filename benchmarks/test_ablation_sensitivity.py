"""A7 — Extension: which non-ideality causes which error?

Isolates each analog error source (finite gain, amplifier offsets,
diode drop, comparator offset, residual ratio tolerance) and measures
its contribution per distance function — turning the paper's verbal
error attributions ("larger zero drift exists [in] PEs for DTW and
EdD") into numbers.
"""

import pytest

from repro.eval import run_sensitivity

from conftest import print_section


def test_error_source_attribution(benchmark):
    report = benchmark.pedantic(
        lambda: run_sensitivity(
            functions=("dtw", "edit", "hausdorff", "manhattan"),
            length=16,
            n_pairs=2,
        ),
        rounds=1,
        iterations=1,
    )

    # The paper's attribution: drift through the deep PE cascade
    # drives DTW's error.  Both cascade-accumulating sources qualify —
    # zero-mean amplifier offsets (random walk) and the diode drop
    # (systematic bias per min-module stage).
    assert report.dominant_source("dtw") in ("offsets", "diode_drop")

    # The exact configuration is exact, everywhere.
    for function in ("dtw", "edit", "hausdorff", "manhattan"):
        assert report.errors_of(function)["none"] == pytest.approx(
            0.0, abs=1e-9
        )

    # The deep-DP functions suffer more from offsets than the
    # single-stage row function does.
    assert (
        report.errors_of("dtw")["offsets"]
        > report.errors_of("manhattan")["offsets"]
    )

    print_section(
        "Extension A7 — error-source sensitivity per function",
        report.table(),
    )
