"""A4 — Extension: Monte-Carlo chip variation and parametric yield.

Beyond the paper's single simulated chip: sweep fabricated-chip
instances (systematic offsets, comparator thresholds, residual ratio
errors all re-drawn per seed), print the across-chip error
distribution, and the yield-vs-tuning-quality curve that connects the
Section 3.3 tuning spec to manufacturability.
"""

import numpy as np
import pytest

from repro.eval import run_monte_carlo, yield_vs_tolerance

from conftest import print_section


def test_monte_carlo_yield(benchmark):
    result = benchmark.pedantic(
        lambda: run_monte_carlo(
            "dtw",
            n_chips=16,
            length=14,
            specification=0.05,
            pairs_per_chip=2,
        ),
        rounds=1,
        iterations=1,
    )
    errors = np.array([c.mean_error for c in result.chips])
    assert errors.std() > 0.0  # chips genuinely differ
    assert result.yield_fraction >= 0.75  # the tuned design yields

    curve = yield_vs_tolerance(
        "dtw",
        tolerances=(0.0, 0.01, 0.05),
        n_chips=10,
        length=14,
        specification=0.04,
        pairs_per_chip=1,
    )
    assert curve[0.0] >= curve[0.05]

    rows = [result.table(), ""]
    rows.append(f"{'ratio tolerance':>16} {'yield':>7}")
    for tolerance, y in sorted(curve.items()):
        rows.append(f"{tolerance:>16.3f} {y:>6.0%}")
    print_section(
        "Extension A4 — Monte-Carlo chip variation & parametric yield",
        "\n".join(rows),
    )
