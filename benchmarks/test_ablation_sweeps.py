"""A3 — Ablation: Sakoe-Chiba band fraction and voltage resolution.

The paper fixes R = 5% x n (power analysis) and 20 mV per unit
(Table 1) without exploring either; these sweeps quantify the
trade-offs behind those choices.
"""

import pytest

from repro.eval import run_band_sweep, run_resolution_sweep

from conftest import print_section


def test_band_fraction_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: run_band_sweep(
            fractions=(0.025, 0.05, 0.1, 0.25, 1.0),
            length=20,
            n_pairs=1,
        ),
        rounds=1,
        iterations=1,
    )
    # Wider bands track unconstrained DTW more closely...
    gaps = [r.mean_abs_band_gap for r in rows]
    assert gaps[-1] == pytest.approx(0.0, abs=1e-9)
    assert gaps[0] >= gaps[-1]
    # ...but cost more active PEs (power).
    pes = [r.active_pes_at_128 for r in rows]
    assert pes == sorted(pes)

    lines = [
        f"{'band R/n':>9} {'gap to full DTW':>16} "
        f"{'hw rel. error':>14} {'active PEs @128':>16}"
    ]
    for r in rows:
        lines.append(
            f"{r.band_fraction:>9.3f} {r.mean_abs_band_gap:>16.3f} "
            f"{r.mean_relative_error_vs_sw:>13.2%} "
            f"{r.active_pes_at_128:>16.0f}"
        )
    print_section(
        "Ablation A3a — Sakoe-Chiba band fraction", "\n".join(lines)
    )


def test_voltage_resolution_sweep(benchmark):
    rows = benchmark.pedantic(
        lambda: run_resolution_sweep(
            resolutions_mv=(5.0, 10.0, 20.0, 40.0),
            length=20,
            n_pairs=1,
        ),
        rounds=1,
        iterations=1,
    )
    # Output voltage scales with the resolution.
    volts = [r.max_output_voltage for r in rows]
    assert volts == sorted(volts)
    # The Table 1 choice (20 mV) stays accurate and rail-safe here.
    by_res = {r.resolution_mv: r for r in rows}
    assert by_res[20.0].mean_relative_error < 0.05
    assert by_res[20.0].overflow_fraction == 0.0

    lines = [
        f"{'res (mV)':>9} {'rel. error':>11} {'overflow':>9} "
        f"{'max Vout (V)':>13}"
    ]
    for r in rows:
        lines.append(
            f"{r.resolution_mv:>9.0f} {r.mean_relative_error:>10.2%} "
            f"{r.overflow_fraction:>8.0%} "
            f"{r.max_output_voltage:>13.3f}"
        )
    print_section(
        "Ablation A3b — voltage resolution (value -> volts scale)",
        "\n".join(lines),
    )
