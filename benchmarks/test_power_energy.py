"""P — Section 4.3: power and energy-efficiency analysis.

Regenerates the in-text power table (per-function accelerator power,
existing-work power, energy-efficiency improvement) and checks it
against every number the paper prints: the DTW breakdown
(0.20 / 0.13 / 0.026 / 0.22 W), the six totals, and the lower end of
the energy band (~26.7x; see EXPERIMENTS.md on the upper end).
"""

import pytest

from repro.accelerator import (
    PAPER_REPORTED_POWER_W,
    accelerator_power,
)
from repro.eval import run_fig6a, run_power_table

from conftest import print_section


@pytest.fixture(scope="module")
def power_table(accelerator):
    speedups = {
        row.function: row.speedup
        for row in run_fig6a(length=40, accelerator=accelerator).rows
    }
    return run_power_table(speedups=speedups)


def test_power_and_energy(benchmark, power_table):
    breakdown = benchmark(lambda: accelerator_power("dtw"))

    # The paper's worked DTW example, component by component.
    assert breakdown.opamp_w == pytest.approx(0.20, abs=0.01)
    assert breakdown.dac_w == pytest.approx(0.13, abs=0.005)
    assert breakdown.adc_w == pytest.approx(0.026, abs=0.002)
    assert breakdown.memristor_w == pytest.approx(0.22, abs=0.01)
    assert breakdown.total_w == pytest.approx(0.58, abs=0.01)

    # All six totals.
    for row in power_table.rows:
        assert row.ours_w == pytest.approx(
            PAPER_REPORTED_POWER_W[row.function], rel=0.02
        ), row.function

    # Energy-efficiency improvements: at least one order of magnitude
    # everywhere; the DTW floor lands at the paper's ~26.7x.
    lo, hi = power_table.energy_range
    assert 20.0 < lo < 40.0
    assert hi > 1000.0

    print_section(
        "Section 4.3 — power and energy efficiency", power_table.table()
    )
