"""F3 — Fig. 3: early determination waveforms in the analog domain.

Fig. 3 plots |V(MD1)|, |V(MD2)|, |V(MD3)| settling together and marks
the Early Point: "the relation ... in the unconvergence state and the
convergence state are the same."  This bench simulates three MD
computations sharing one input edge, samples their ordering at a grid
of fractions of the convergence time, and prints the waveform table —
showing the ordering is correct long before settling.
"""

import numpy as np
import pytest

from repro.accelerator import PAPER_PARAMS
from repro.accelerator.pe import build_manhattan_graph
from repro.analog import BlockGraph, suggest_dt, transient

from conftest import print_section


def _three_candidate_graph(rng):
    graph = BlockGraph()
    query = rng.normal(size=12)
    q_ids = [graph.const(v) for v in PAPER_PARAMS.encode(query)]
    spreads = (0.15, 0.7, 1.8)  # MD1 < MD2 < MD3 by construction
    for k, spread in enumerate(spreads):
        candidate = query + rng.normal(0.0, spread, 12)
        c_ids = [
            graph.const(v) for v in PAPER_PARAMS.encode(candidate)
        ]
        out = build_manhattan_graph(
            graph, q_ids, c_ids, np.ones(12), PAPER_PARAMS
        )
        graph.mark_output(f"MD{k + 1}", out)
    return graph


def test_fig3_ordering_stable_before_convergence(benchmark, rng):
    graph = _three_candidate_graph(np.random.default_rng(33))
    frozen = graph.freeze()
    dt = suggest_dt(frozen)
    window = 20.0 * float(np.max(frozen.critical_tau))

    result = benchmark.pedantic(
        lambda: transient(frozen, t_stop=window, dt=dt),
        rounds=1,
        iterations=1,
    )
    names = ["MD1", "MD2", "MD3"]
    t_conv = max(
        result.convergence_time(n, PAPER_PARAMS.convergence_tolerance)
        for n in names
    )
    final_order = list(
        np.argsort([result.final[n] for n in names])
    )

    rows = [
        f"{'t/t_conv':>9} {'|V(MD1)| mV':>12} {'|V(MD2)| mV':>12} "
        f"{'|V(MD3)| mV':>12} {'order ok':>9}"
    ]
    fractions = (0.05, 0.1, 0.25, 0.5, 1.0)
    ok_at = {}
    for fraction in fractions:
        k = min(
            int(np.searchsorted(result.time, fraction * t_conv)),
            result.time.size - 1,
        )
        values = [abs(result.waves[n][k]) for n in names]
        order = list(np.argsort(values))
        ok_at[fraction] = order == final_order
        rows.append(
            f"{fraction:>9.2f} {values[0]*1e3:>12.3f} "
            f"{values[1]*1e3:>12.3f} {values[2]*1e3:>12.3f} "
            f"{'yes' if ok_at[fraction] else 'NO':>9}"
        )

    # The paper's Early Point (t_conv / 10) must already rank correctly.
    assert ok_at[0.1]
    assert ok_at[1.0]
    print_section(
        "Fig. 3 — early determination: ordering during settling",
        "\n".join(rows)
        + f"\nconvergence time {t_conv * 1e9:.1f} ns; Early Point = "
        f"t_conv/10 (the paper's choice) already final-ordered",
    )
