"""T2 — Table 2: stochastic Biolek model parameters.

Prints the switching-probability curve implied by the Table 2
parameters and quantifies the Section 4.2 robustness claim: at compute
voltages (<= Vcc/4) and compute times (~ns), the probability of any
stochastic resistance change across the whole array over hundreds of
runs is negligible.  Benchmarks a batch of stochastic-device exposures.
"""

import numpy as np
import pytest

from repro.memristor import (
    PAPER_PARAMETERS,
    StochasticMemristor,
    expected_disturb_probability,
    switching_probability,
)

from conftest import print_section


def _curve_rows() -> str:
    lines = [f"{'|V| (V)':>8} {'P(switch in 1 us)':>20} {'mean time (s)':>15}"]
    from repro.memristor import switching_rate

    for v in (0.25, 0.5, 1.0, 2.0, 3.0, 3.5, 4.0, 4.5):
        rate = switching_rate(v)
        mean = 1.0 / rate if rate > 0 else float("inf")
        lines.append(
            f"{v:>8.2f} {switching_probability(v, 1e-6):>20.3e} "
            f"{mean:>15.3e}"
        )
    return "\n".join(lines)


def test_table2_parameters_and_disturb_immunity(benchmark, rng):
    p = PAPER_PARAMETERS
    assert (p.v0, p.tau, p.v_t0, p.delta_v) == (
        0.156,
        2.85e5,
        3.0,
        0.2,
    )
    assert (p.r_off, p.r_on, p.delta_r) == (100e3, 1e3, 0.05)

    # Section 4.2 claim: sub-threshold compute voltages + ns compute
    # times + hundreds of runs => no stochastic flips.
    n_devices = 128 * 128 * 14  # full array, 7 op-amps x 2 memristors
    runs = 500
    p_any = expected_disturb_probability(
        compute_voltage=0.25,
        compute_time=runs * 100e-9,
        n_devices=n_devices,
    )
    assert p_any < 1e-9

    def expose_batch():
        device = StochasticMemristor(
            x=0.0, rng=np.random.default_rng(1)
        )
        flips = 0
        for _ in range(200):
            flips += device.expose(0.25, 100e-9)
        return flips

    flips = benchmark(expose_batch)
    assert flips == 0
    print_section(
        "Table 2 — stochastic Biolek switching law",
        _curve_rows()
        + f"\nP(any flip | full array, {runs} runs @ 0.25 V, 100 ns)"
        f" = {p_any:.2e}  (Section 4.2: 'rather low')",
    )
