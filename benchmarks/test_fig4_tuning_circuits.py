"""F4 — Fig. 4: the resistance-tuning circuits, run in the MNA engine.

Regenerates the Section 3.3(2) procedure on the actual analog
subtractor/adder verify circuits: fabricate devices 30 % off target,
iterate modulate (noisy write) / verify (0.1 V SPICE measurement), and
print the per-iteration trajectory — the evidence behind the claim
that post-fabrication tuning recovers from +/-20-30 % process
variation.
"""

import numpy as np
import pytest

from repro.memristor import Memristor, TuningConfig
from repro.memristor.tuning_circuits import (
    measure_adder_weight,
    tune_ratio_in_circuit,
)

from conftest import print_section


def test_fig4_tuning_trajectory(benchmark):
    def run_loop():
        rng = np.random.default_rng(44)
        m_in = Memristor()
        m_in.set_resistance(100e3)
        m_fb = Memristor()
        m_fb.set_resistance(68e3)  # fabricated 32% low
        return tune_ratio_in_circuit(
            m_in,
            m_fb,
            1.0,
            config=TuningConfig(tolerance=5e-3, max_iterations=60),
            rng=rng,
        )

    result = benchmark(run_loop)
    assert result.relative_error < 0.01

    rows = [f"{'iteration':>10} {'measured ratio':>15} {'error':>8}"]
    for k, measured in enumerate(result.history, start=1):
        rows.append(
            f"{k:>10} {measured:>15.4f} "
            f"{abs(measured - 1.0):>8.2%}"
        )

    # Fig. 4(b): the adder verify circuit reads back realised weights.
    ref = Memristor()
    ref.set_resistance(50e3)
    weight_rows = []
    for target_w in (0.5, 1.0, 2.0):
        m = Memristor()
        m.set_resistance(50e3 / target_w)
        measured = measure_adder_weight(m, ref)
        weight_rows.append(
            f"  adder weight target {target_w:.1f}: circuit reads "
            f"{measured:.4f}"
        )
        assert measured == pytest.approx(target_w, rel=5e-3)

    print_section(
        "Fig. 4 — modulate/verify tuning on the SPICE circuits",
        "\n".join(rows)
        + f"\nconverged in {result.iterations} iterations to "
        f"{result.relative_error:.2%} ratio error\n"
        + "\n".join(weight_rows),
    )
