"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one artefact of the paper's Section 4
(figure, table, or in-text analysis) and prints the same rows/series
the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` shows the regenerated tables inline; without it they are
shown for failing tests only).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import DistanceAccelerator


@pytest.fixture(scope="session")
def accelerator() -> DistanceAccelerator:
    """The Fig. 5 measurement chip: computation-only, no converters."""
    return DistanceAccelerator(quantise_io=False)


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(2017)


def print_section(title: str, body: str) -> None:
    bar = "=" * 70
    print(f"\n{bar}\n{title}\n{bar}\n{body}")
