"""A6 — Extension: does analog error change mining decisions?

Section 4.2: "The error can be regarded as a bias, which has no
significant influence on the relation of results."  This bench runs
1-NN classification on all three datasets with software vs accelerated
distances and measures how many decisions actually flip.
"""

import pytest

from repro.eval.accuracy import run_accuracy_comparison

from conftest import print_section


def test_decision_fidelity(benchmark, accelerator):
    report = benchmark.pedantic(
        lambda: run_accuracy_comparison(accelerator=accelerator),
        rounds=1,
        iterations=1,
    )
    # The paper's claim: decisions survive the analog error.  Demand
    # high (not perfect — borderline neighbours can flip) agreement
    # everywhere and no systematic accuracy collapse.
    assert report.worst_agreement >= 0.75
    for row in report.rows:
        assert (
            abs(row.hardware_accuracy - row.software_accuracy) <= 0.25
        ), (row.dataset, row.function)

    mean_agreement = sum(
        r.decision_agreement for r in report.rows
    ) / len(report.rows)
    assert mean_agreement >= 0.9

    print_section(
        "Extension A6 — mining-decision fidelity under analog error",
        report.table()
        + f"\nmean decision agreement: {mean_agreement:.1%} "
        f"(Section 4.2: the error 'has no significant influence on "
        f"the relation of results')",
    )
