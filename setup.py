"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so the package remains installable with ``python setup.py
develop`` on machines without the ``wheel`` package (PEP 660 editable
installs need it, legacy develop mode does not).
"""

from setuptools import setup

setup()
